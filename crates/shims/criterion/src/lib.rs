//! Offline shim for the subset of `criterion` used by this workspace's
//! benchmarks: `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a warm-up phase, each sample times a batch of
//! iterations sized so one batch is neither trivially short nor longer
//! than the configured measurement window, then the per-iteration median
//! over all samples is reported on stdout as
//! `group/function/param  time: <median> (min … max)`. There are no HTML
//! reports and no statistical regression analysis — this shim exists so
//! `cargo bench` runs offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        let mut s = group.to_string();
        if let Some(f) = &self.function {
            s.push('/');
            s.push_str(f);
        }
        if let Some(p) = &self.parameter {
            s.push('/');
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up phase, then `sample_size` timed
    /// batches. The batch iteration count is calibrated from the warm-up
    /// so the whole measurement fits the configured window.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up, also calibrating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let budget_per_sample =
            self.measurement.as_nanos().max(1) / self.sample_size.max(1) as u128;
        let batch = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / u32::try_from(batch).unwrap_or(u32::MAX));
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        println!(
            "{name:<48} time: {} ({} … {})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn run(&mut self, name: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b);
        b.report(&name);
    }

    /// Benchmarks `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.render(&self.name);
        self.run(name, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let name = id.into().render(&self.name);
        self.run(name, f);
        self
    }

    /// Ends the group (upstream finalizes reports here; the shim prints
    /// eagerly, so this only closes the scope).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_millis(1500),
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from(""), f);
        drop(group);
        self
    }
}

/// Opaque re-export so call sites can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // `--test`); a plain-binary harness can ignore them, but must
            // not *run* benches under `cargo test`'s smoke invocation.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).render("g"), "g/f/3");
        assert_eq!(BenchmarkId::from_parameter("x").render("g"), "g/x");
        assert_eq!(BenchmarkId::from("plain").render("g"), "g/plain");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
