//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! Provides [`Strategy`] with `prop_map` / `prop_flat_map`, integer-range
//! and tuple and `collection::vec` strategies, `any::<bool>()`, string
//! strategies from pattern literals (generation only — the pattern is not
//! interpreted), the [`proptest!`] macro, and `prop_assert*`.
//!
//! Differences from upstream: no shrinking (failures report the failing
//! case's seed instead of a minimized input), and string "regex"
//! strategies produce arbitrary short ASCII-heavy strings regardless of
//! the pattern. Both are acceptable for this workspace's generative
//! tests.

#![forbid(unsafe_code)]

/// Test-case plumbing: config, RNG, and failure type.
pub mod test_runner {
    use std::fmt;

    /// Run configuration (`cases` = number of generated inputs per test).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed test case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic SplitMix64 case RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded for one test case.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (which must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The [`Strategy`] trait and its adapters.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and draws
        /// from the produced strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128 - s as i128) as u128 + 1;
                    (s as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    /// Pattern string strategy (`"..." as a Strategy`): yields arbitrary
    /// short strings. The pattern itself is **not** interpreted; the only
    /// pattern the workspace uses is `".*"`, for which arbitrary strings
    /// are exactly right.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(24) as usize;
            (0..len)
                .map(|_| {
                    match rng.below(8) {
                        // Mostly printable ASCII…
                        0..=5 => char::from(32 + rng.below(95) as u8),
                        // …some control characters…
                        6 => char::from(rng.below(32) as u8),
                        // …and occasional non-ASCII.
                        _ => char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('¤'),
                    }
                })
                .collect()
        }
    }

    /// Strategy for `any::<T>()`.
    #[derive(Debug, Clone, Default)]
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// Produces the canonical full-domain strategy for `T`.
    pub fn any<T>() -> AnyStrategy<T>
    where
        AnyStrategy<T>: super::strategy::Strategy,
    {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob import every proptest file starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current test case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Derive a per-test seed so distinct tests explore distinct
            // streams; override with PROPTEST_SEED for reproduction.
            let base: u64 = ::std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                    })
                });
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::new(
                    base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} (base seed {base:#x}) failed: {e}"
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = crate::test_runner::TestRng::new(42);
        let s = crate::collection::vec((0usize..3, any::<bool>()), 1..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 3));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = crate::test_runner::TestRng::new(7);
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_passes(x in 0usize..10, (a, b) in (0i64..5, 1i64..=3)) {
            prop_assert!(x < 10);
            prop_assert!(a < 5 && (1..=3).contains(&b));
            if x == 100 {
                return Ok(());
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(b, 0);
        }
    }
}
