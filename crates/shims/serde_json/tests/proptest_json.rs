//! Round-trip property tests for the serde_json shim's serializer and
//! parser. The `cqchase-service` wire protocol is newline-delimited
//! JSON built on `to_string`/`from_str`, so every representable value
//! tree must survive `to_string → from_str` (and the pretty printer)
//! unchanged.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use serde_json::{from_str, to_string, to_string_pretty, Map, Number, Value};

/// A deterministic random value tree. Depth is bounded so trees stay
/// small; width shrinks with depth so the case count stays tame.
fn gen_value(rng: &mut TestRng, depth: usize) -> Value {
    // Leaves only at the bottom; containers get rarer with depth.
    let pick = if depth == 0 {
        rng.below(6)
    } else {
        rng.below(8)
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.next_u64() & 1 == 1),
        2 => Value::Number(Number::Int(rng.next_u64() as i64)),
        3 => Value::Number(Number::UInt(i64::MAX as u64 + 1 + rng.below(1 << 40))),
        4 => {
            // Finite floats only: JSON has no NaN/inf (the shim emits
            // null for them, which cannot round-trip by design).
            let mantissa = rng.next_u64() as i32;
            let exp = rng.below(17) as i32 - 8;
            Value::Number(Number::Float(f64::from(mantissa) * 10f64.powi(exp)))
        }
        5 => Value::String(gen_string(rng)),
        6 => {
            let len = rng.below(4) as usize;
            Value::Array((0..len).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.below(4) as usize;
            let mut map = Map::new();
            for i in 0..len {
                // Suffix ensures distinct keys (duplicate keys collapse
                // in a Map, which would make the comparison vacuous).
                let key = format!("{}#{i}", gen_string(rng));
                map.insert(key, gen_value(rng, depth - 1));
            }
            Value::Object(map)
        }
    }
}

/// Strings exercising escapes: control characters, quotes, backslashes,
/// non-ASCII (including astral-plane characters that need surrogate
/// pairs in `\u` escapes).
fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| match rng.below(10) {
            0 => '"',
            1 => '\\',
            2 => char::from(rng.below(0x20) as u8), // control
            3 => 'é',
            4 => '𝔸', // astral plane
            5 => '\u{2028}',
            _ => char::from(32 + rng.below(95) as u8), // printable ASCII
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compact_roundtrip(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let v = gen_value(&mut rng, 3);
        let text = to_string(&v).unwrap();
        prop_assert!(!text.contains('\n'), "compact form is one line: {text:?}");
        let back = from_str(&text).unwrap();
        prop_assert_eq!(&back, &v, "compact roundtrip of {}", text);
    }

    #[test]
    fn pretty_roundtrip(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let v = gen_value(&mut rng, 3);
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        prop_assert_eq!(&back, &v, "pretty roundtrip of {}", text);
    }

    #[test]
    fn parse_is_deterministic(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed.rotate_left(17));
        let v = gen_value(&mut rng, 2);
        let text = to_string(&v).unwrap();
        // Parsing the same text twice gives equal values, and
        // re-serializing the parse gives the same text (the shim's Map
        // iteration order is stable).
        let a = from_str(&text).unwrap();
        let b = from_str(&text).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(to_string(&a).unwrap(), text);
    }
}
