//! Offline shim for the subset of `serde_json` used by this workspace:
//! the [`Value`] tree, [`Map`], the [`json!`] macro for flat object
//! literals, and [`to_string_pretty`]. No serde integration — the bench
//! harness only ever serializes `Value`s it built by hand.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no NaN/inf; mirror serde_json by emitting null.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// A JSON object with sorted keys (like upstream's default `Map`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// An empty object.
    pub fn new() -> Self {
        Map {
            entries: BTreeMap::new(),
        }
    }

    /// Inserts a key/value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, when numeric and representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, when numeric and representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }
}

/// Shared "missing entry" value for `Index` (upstream does the same).
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_eq_via {
    ($conv:ident / $repr:ty => $($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$conv() == Some(*other as $repr)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_via!(as_i64 / i64 => i8, i16, i32, i64, u8, u16, u32);
impl_eq_via!(as_f64 / f64 => f32, f64);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    /// Compact single-line JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut out = String::new();
                escape_into(s, &mut out);
                write!(f, "{out}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, item)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    escape_into(k, &mut key);
                    write!(f, "{key}:{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Serialization failure (never produced by this shim; kept so call sites
/// can `.unwrap()` exactly as with upstream serde_json).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serialization error")
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Builds a [`Value`] from a flat object literal (`json!({ "k": expr })`)
/// or any single `Into<Value>` expression.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert($key.to_string(), $crate::Value::from($val));)*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_pretty() {
        let v = json!({ "b": 2, "a": vec![1, 2], "s": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": ["));
        assert!(s.contains("\"s\": \"x\\\"y\""));
        // Keys are sorted like upstream's default map.
        assert!(s.find("\"a\"").unwrap() < s.find("\"b\"").unwrap());
    }

    #[test]
    fn numbers_format() {
        assert_eq!(Number::Int(-3).to_string(), "-3");
        assert_eq!(Number::Float(1.5).to_string(), "1.5");
        assert_eq!(Number::Float(2.0).to_string(), "2.0");
        assert_eq!(Number::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nested_value_passthrough() {
        let inner = json!({ "x": 1 });
        let outer = json!({ "inner": inner, "flag": true });
        match outer {
            Value::Object(m) => {
                assert!(matches!(m.get("inner"), Some(Value::Object(_))));
                assert_eq!(m.get("flag"), Some(&Value::Bool(true)));
            }
            _ => panic!("expected object"),
        }
    }
}
