//! Offline shim for the subset of `serde_json` used by this workspace:
//! the [`Value`] tree, [`Map`], the [`json!`] macro for flat object
//! literals, [`to_string`] / [`to_string_pretty`], and a full
//! recursive-descent parser ([`from_str`]). No serde derive integration
//! — consumers build and walk `Value`s by hand. The bench harness uses
//! it for baselines and the `cqchase-service` wire protocol for its
//! newline-delimited JSON requests, so `to_string`/`from_str` must
//! round-trip every value tree (enforced by `tests/proptest_json.rs`).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) if x.is_finite() => {
                // Keep a float marker (`.` or exponent) so the value
                // re-parses as a float — upstream does the same.
                let s = format!("{x}");
                if s.contains(['.', 'e', 'E']) {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s}.0")
                }
            }
            // JSON has no NaN/inf; mirror serde_json by emitting null.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// A JSON object with sorted keys (like upstream's default `Map`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// An empty object.
    pub fn new() -> Self {
        Map {
            entries: BTreeMap::new(),
        }
    }

    /// Inserts a key/value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, when numeric and representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, when numeric and representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }
}

/// Shared "missing entry" value for `Index` (upstream does the same).
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_eq_via {
    ($conv:ident / $repr:ty => $($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$conv() == Some(*other as $repr)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_via!(as_i64 / i64 => i8, i16, i32, i64, u8, u16, u32);
impl_eq_via!(as_f64 / f64 => f32, f64);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    /// Compact single-line JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut out = String::new();
                escape_into(s, &mut out);
                write!(f, "{out}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, item)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    escape_into(k, &mut key);
                    write!(f, "{key}:{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Serialization or parse failure. Serialization never fails in this
/// shim (the type is kept so call sites can `.unwrap()` exactly as with
/// upstream serde_json); parse failures carry a byte offset and message.
#[derive(Debug, Default)]
pub struct Error {
    detail: Option<(usize, &'static str)>,
}

impl Error {
    fn parse(at: usize, msg: &'static str) -> Error {
        Error {
            detail: Some((at, msg)),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.detail {
            Some((at, msg)) => write!(f, "JSON parse error at byte {at}: {msg}"),
            None => write!(f, "serialization error"),
        }
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] (recursive descent over the
/// full JSON grammar; `\u` escapes are decoded, surrogate pairs
/// included). Trailing non-whitespace is an error, like upstream.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse(pos, "trailing characters"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &'static [u8], msg: &'static str) -> Result<(), Error> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::parse(*pos, msg))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::parse(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, b"null", "expected `null`").map(|()| Value::Null),
        Some(b't') => expect(b, pos, b"true", "expected `true`").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, b"false", "expected `false`").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::parse(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b":", "expected `:`")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::parse(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b"\"", "expected string")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::parse(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or(Error::parse(*pos, "bad escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(b, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            expect(b, pos, b"\\u", "expected low surrogate")?;
                            let lo = parse_hex4(b, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::parse(*pos, "invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or(Error::parse(*pos, "invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::parse(*pos, "unknown escape")),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a char boundary walk).
                let rest = &b[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| Error::parse(*pos, "bad utf-8"))?;
                let c = s.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, Error> {
    if b.len() - *pos < 4 {
        return Err(Error::parse(*pos, "short unicode escape"));
    }
    let s = std::str::from_utf8(&b[*pos..*pos + 4])
        .map_err(|_| Error::parse(*pos, "bad unicode escape"))?;
    let v = u32::from_str_radix(s, 16).map_err(|_| Error::parse(*pos, "bad unicode escape"))?;
    *pos += 4;
    Ok(v)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    if text.is_empty() || text == "-" {
        return Err(Error::parse(start, "expected a value"));
    }
    let num = if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            Number::Int(i)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::UInt(u)
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::parse(start, "bad number"))?,
            )
        }
    } else {
        Number::Float(
            text.parse::<f64>()
                .map_err(|_| Error::parse(start, "bad number"))?,
        )
    };
    Ok(Value::Number(num))
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Serializes a [`Value`] compactly on one line (no interior newlines —
/// the representation the newline-delimited service protocol relies
/// on). Same output as the `Display` impl; the `Result` mirrors
/// upstream's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Builds a [`Value`] from a flat object literal (`json!({ "k": expr })`)
/// or any single `Into<Value>` expression.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert($key.to_string(), $crate::Value::from($val));)*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_pretty() {
        let v = json!({ "b": 2, "a": vec![1, 2], "s": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": ["));
        assert!(s.contains("\"s\": \"x\\\"y\""));
        // Keys are sorted like upstream's default map.
        assert!(s.find("\"a\"").unwrap() < s.find("\"b\"").unwrap());
    }

    #[test]
    fn numbers_format() {
        assert_eq!(Number::Int(-3).to_string(), "-3");
        assert_eq!(Number::Float(1.5).to_string(), "1.5");
        assert_eq!(Number::Float(2.0).to_string(), "2.0");
        assert_eq!(Number::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nested_value_passthrough() {
        let inner = json!({ "x": 1 });
        let outer = json!({ "inner": inner, "flag": true });
        match outer {
            Value::Object(m) => {
                assert!(matches!(m.get("inner"), Some(Value::Object(_))));
                assert_eq!(m.get("flag"), Some(&Value::Bool(true)));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn parse_roundtrips_pretty_output() {
        let doc = json!({
            "name": "bench",
            "speedup": 194.47,
            "count": 42,
            "neg": -7,
            "flag": true,
            "nothing": Value::Null,
        });
        let text = to_string_pretty(&doc).unwrap();
        assert_eq!(from_str(&text).unwrap(), doc);
        // Arrays, nesting, escapes, unicode.
        let v = from_str(r#"[1, 2.5, "a\\n\u00e9", {"k": []}, null]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("a\\né"));
        // Errors: trailing garbage, bad literals.
        assert!(from_str("{} extra").is_err());
        assert!(from_str("nulx").is_err());
        assert!(from_str("[1,").is_err());
    }
}
