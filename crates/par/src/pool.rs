//! The hand-rolled parallel executor.
//!
//! The container this workspace builds in is offline, so there is no
//! `rayon`/`crossbeam`; everything here is `std::thread` plus channels
//! and one atomic:
//!
//! * [`parallel_map`] — the batch primitive. Worker threads are scoped
//!   (they may borrow the batch), and they *self-schedule*: a shared
//!   atomic cursor acts as the injector queue and each idle worker
//!   steals the next chunk of indices from it. That is the
//!   work-stealing discipline collapsed to its useful core — with one
//!   producer and uniform tasks, per-worker deques would only add
//!   shuffling; chunked self-scheduling gives the same load balance
//!   (no worker idles while chunks remain) without them.
//!
//! Chunking matters: per-item dispatch would contend on the cursor for
//! microsecond-sized items (one containment check can be < 1 µs), while
//! static striping would let one hard chunk serialize the tail. The
//! default splits the batch so each worker expects ~4 chunks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

/// Number of worker threads to use by default: the hardware's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Executor configuration for [`parallel_map`]-style batch runs.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker thread count. `1` runs inline on the caller's thread (no
    /// spawns, exactly the sequential engine).
    pub threads: usize,
    /// Items per stolen chunk; `None` sizes chunks as
    /// `ceil(len / (4 · threads))` so each worker expects ~4 steals.
    pub chunk: Option<usize>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: default_threads(),
            chunk: None,
        }
    }
}

impl BatchOptions {
    /// Options for `threads` workers, default chunking.
    pub fn with_threads(threads: usize) -> BatchOptions {
        BatchOptions {
            threads: threads.max(1),
            chunk: None,
        }
    }

    fn chunk_for(&self, len: usize) -> usize {
        match self.chunk {
            Some(c) => c.max(1),
            None => len.div_ceil(4 * self.threads.max(1)).max(1),
        }
    }
}

/// Applies `f` to every index of `0..len` across worker threads and
/// returns the results in index order.
///
/// `f` is called as `f(index)` and must be `Sync` (it runs concurrently
/// on several threads; per-thread mutable state belongs inside the
/// worker closure you build it from — see [`map_with`] for the
/// scratch-carrying variant). With `opts.threads == 1` no thread is
/// spawned and results are computed inline in order.
pub fn parallel_map<R, F>(len: usize, opts: BatchOptions, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_with(len, opts, || (), move |(), i| f(i))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread (build scratch buffers, plan caches, …) and `f` is
/// called as `f(&mut state, index)`.
///
/// Results arrive over an `mpsc` channel tagged with their index and are
/// reassembled in order, so the output is identical to
/// `(0..len).map(..)` regardless of scheduling.
pub fn map_with<R, S, I, F>(len: usize, opts: BatchOptions, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if opts.threads <= 1 || len <= 1 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    let chunk = opts.chunk_for(len);
    let workers = opts.threads.min(len.div_ceil(chunk));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                loop {
                    // Steal the next chunk from the shared injector.
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    for i in start..(start + chunk).min(len) {
                        // The receiver outlives the scope; send cannot
                        // fail while it does.
                        let _ = tx.send((i, f(&mut state, i)));
                    }
                }
            });
        }
        drop(tx);
        // Collect on the caller's thread while workers run.
        for (i, r) in rx.iter() {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool for `'static` jobs — the long-running
/// counterpart of [`map_with`]'s scoped batch workers.
///
/// [`map_with`] spawns scoped threads per batch, which is right for a
/// one-shot computation but wrong for a resident server: a process that
/// lives for days should own its worker threads once and feed them work
/// forever. `cqchase-service` runs one `ThreadPool` for connection
/// handling; anything needing fire-and-forget concurrency with a
/// bounded thread count can use it.
///
/// Jobs are boxed closures delivered over an mpsc channel whose
/// receiving end is shared (mutexed) by the workers — idle workers
/// self-schedule exactly like the batch executor's chunk stealing.
/// Dropping the pool disconnects the channel and joins every worker, so
/// shutdown is graceful: queued and in-flight jobs finish first.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// A pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> ThreadPool {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || loop {
                    // Hold the lock only for the dequeue, not the job.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break, // a job panicked holding the lock
                    };
                    match job {
                        // A panicking job must not kill the worker: a
                        // long-running server's pool would otherwise
                        // shrink with every panic until nothing serves.
                        Ok(job) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => break, // pool dropped: drain complete
                    }
                })
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Enqueues a job. Some idle worker (or the next one to free up)
    /// runs it; there is no result channel — send results through your
    /// own channel if you need them back.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("sender lives until drop")
            .send(Box::new(job))
            .expect("workers live until drop");
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect, then join: workers drain the queue and exit.
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        for threads in [1usize, 2, 4, 7] {
            let got = parallel_map(100, BatchOptions::with_threads(threads), |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn map_with_builds_state_per_worker() {
        let opts = BatchOptions {
            threads: 3,
            chunk: Some(1),
        };
        // Each worker counts its own items; the sum must cover the batch.
        let results = map_with(
            50,
            opts,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count)
            },
        );
        assert_eq!(results.len(), 50);
        assert!(results.iter().enumerate().all(|(i, &(j, _))| i == j));
    }

    #[test]
    fn empty_and_tiny_batches() {
        assert!(parallel_map(0, BatchOptions::with_threads(4), |i| i).is_empty());
        assert_eq!(parallel_map(1, BatchOptions::with_threads(4), |i| i), [0]);
    }

    #[test]
    fn thread_pool_runs_every_job() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.workers(), 3);
        let (tx, rx) = channel();
        for i in 0..50usize {
            let tx = tx.clone();
            pool.execute(move || {
                let _ = tx.send(i * 2);
            });
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<usize> = (0..50).map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn thread_pool_drop_drains_queue() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins the workers after the queue drains.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn thread_pool_survives_panicking_jobs() {
        // One worker: if a panic killed it, the second job would never
        // run and recv would block forever (test would time out).
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("deliberate test panic"));
        let (tx, rx) = channel();
        pool.execute(move || {
            let _ = tx.send(41);
        });
        assert_eq!(rx.recv().unwrap(), 41);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = channel();
        pool.execute(move || {
            let _ = tx.send(7usize);
        });
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
