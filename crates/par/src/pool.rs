//! The hand-rolled parallel executor.
//!
//! The container this workspace builds in is offline, so there is no
//! `rayon`/`crossbeam`; everything here is `std::thread` plus channels
//! and one atomic:
//!
//! * [`parallel_map`] — the batch primitive. Worker threads are scoped
//!   (they may borrow the batch), and they *self-schedule*: a shared
//!   atomic cursor acts as the injector queue and each idle worker
//!   steals the next chunk of indices from it. That is the
//!   work-stealing discipline collapsed to its useful core — with one
//!   producer and uniform tasks, per-worker deques would only add
//!   shuffling; chunked self-scheduling gives the same load balance
//!   (no worker idles while chunks remain) without them.
//!
//! Chunking matters: per-item dispatch would contend on the cursor for
//! microsecond-sized items (one containment check can be < 1 µs), while
//! static striping would let one hard chunk serialize the tail. The
//! default splits the batch so each worker expects ~4 chunks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::thread;

/// Number of worker threads to use by default: the hardware's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Executor configuration for [`parallel_map`]-style batch runs.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker thread count. `1` runs inline on the caller's thread (no
    /// spawns, exactly the sequential engine).
    pub threads: usize,
    /// Items per stolen chunk; `None` sizes chunks as
    /// `ceil(len / (4 · threads))` so each worker expects ~4 steals.
    pub chunk: Option<usize>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: default_threads(),
            chunk: None,
        }
    }
}

impl BatchOptions {
    /// Options for `threads` workers, default chunking.
    pub fn with_threads(threads: usize) -> BatchOptions {
        BatchOptions {
            threads: threads.max(1),
            chunk: None,
        }
    }

    fn chunk_for(&self, len: usize) -> usize {
        match self.chunk {
            Some(c) => c.max(1),
            None => len.div_ceil(4 * self.threads.max(1)).max(1),
        }
    }
}

/// Applies `f` to every index of `0..len` across worker threads and
/// returns the results in index order.
///
/// `f` is called as `f(index)` and must be `Sync` (it runs concurrently
/// on several threads; per-thread mutable state belongs inside the
/// worker closure you build it from — see [`map_with`] for the
/// scratch-carrying variant). With `opts.threads == 1` no thread is
/// spawned and results are computed inline in order.
pub fn parallel_map<R, F>(len: usize, opts: BatchOptions, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_with(len, opts, || (), move |(), i| f(i))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread (build scratch buffers, plan caches, …) and `f` is
/// called as `f(&mut state, index)`.
///
/// Results arrive over an `mpsc` channel tagged with their index and are
/// reassembled in order, so the output is identical to
/// `(0..len).map(..)` regardless of scheduling.
pub fn map_with<R, S, I, F>(len: usize, opts: BatchOptions, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if opts.threads <= 1 || len <= 1 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    let chunk = opts.chunk_for(len);
    let workers = opts.threads.min(len.div_ceil(chunk));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                loop {
                    // Steal the next chunk from the shared injector.
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    for i in start..(start + chunk).min(len) {
                        // The receiver outlives the scope; send cannot
                        // fail while it does.
                        let _ = tx.send((i, f(&mut state, i)));
                    }
                }
            });
        }
        drop(tx);
        // Collect on the caller's thread while workers run.
        for (i, r) in rx.iter() {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        for threads in [1usize, 2, 4, 7] {
            let got = parallel_map(100, BatchOptions::with_threads(threads), |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn map_with_builds_state_per_worker() {
        let opts = BatchOptions {
            threads: 3,
            chunk: Some(1),
        };
        // Each worker counts its own items; the sum must cover the batch.
        let results = map_with(
            50,
            opts,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count)
            },
        );
        assert_eq!(results.len(), 50);
        assert!(results.iter().enumerate().all(|(i, &(j, _))| i == j));
    }

    #[test]
    fn empty_and_tiny_batches() {
        assert!(parallel_map(0, BatchOptions::with_threads(4), |i| i).is_empty());
        assert_eq!(parallel_map(1, BatchOptions::with_threads(4), |i| i), [0]);
    }
}
