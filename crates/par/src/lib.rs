//! # cqchase-par — the parallel batch execution layer
//!
//! The decision procedures in `cqchase-core` and the evaluator in
//! `cqchase-storage` answer one question at a time. A serving system
//! answers millions: batches of containment checks over a schema's
//! dependency set, batches of query evaluations over one instance. This
//! crate turns the sequential batch engines into parallel ones without
//! changing a single answer:
//!
//! * [`pool`] — the hand-rolled executor: scoped `std::thread` workers
//!   that self-schedule chunks off a shared atomic injector (the
//!   work-stealing discipline collapsed to its single-producer core),
//!   results reassembled in order over an `mpsc` channel, plus a
//!   persistent [`ThreadPool`] for `'static` jobs (resident servers —
//!   `cqchase-service` — own their workers for the process lifetime).
//!   No external crates — the build container is offline;
//! * [`containment::check_batch`] — parallel
//!   [`cqchase_core::check_batch`], parallelized over chase groups so
//!   the sequential engine's chase sharing is preserved;
//! * [`eval::evaluate_batch`] — parallel
//!   [`cqchase_storage::evaluate_batch`] over one shared read-only
//!   [`DbIndex`](cqchase_storage::DbIndex), one plan cache and join
//!   scratch per worker.
//!
//! Determinism is the contract: for every thread count, both batch entry
//! points return exactly what their sequential counterparts return
//! (differential property tests in `tests/proptest_par.rs` enforce it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod containment;
pub mod eval;
pub mod pool;

pub use containment::{check_batch, check_batch_cancellable};
pub use eval::{evaluate_batch, evaluate_batch_indexed, evaluate_batch_indexed_cancellable};
pub use pool::{default_threads, map_with, parallel_map, BatchOptions, ThreadPool};
