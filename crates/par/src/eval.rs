//! Parallel batch evaluation `Q(B)`.
//!
//! One [`DbIndex`] is built (or borrowed) per batch and shared read-only
//! across the worker threads; each worker carries its own plan cache and
//! join scratch, so the steady state takes no locks and performs no
//! allocation beyond result tuples.

use cqchase_index::{CancelToken, JoinScratch, PlanCache};
use cqchase_ir::ConjunctiveQuery;
use cqchase_storage::{evaluate_indexed_with, Database, DbIndex, Tuple};

use crate::pool::{map_with, BatchOptions};

/// Evaluates a batch of queries over one instance across worker
/// threads. Results are in query order and identical to
/// [`cqchase_storage::evaluate_batch`] (which is the 1-thread case).
pub fn evaluate_batch(
    qs: &[ConjunctiveQuery],
    db: &Database,
    batch: BatchOptions,
) -> Vec<Vec<Tuple>> {
    evaluate_batch_indexed(qs, &DbIndex::build(db), batch)
}

/// [`evaluate_batch`] against a prebuilt (shared, read-only) index.
pub fn evaluate_batch_indexed(
    qs: &[ConjunctiveQuery],
    idx: &DbIndex,
    batch: BatchOptions,
) -> Vec<Vec<Tuple>> {
    map_with(
        qs.len(),
        batch,
        || (PlanCache::new(), JoinScratch::new()),
        |(cache, scratch), i| evaluate_indexed_with(&qs[i], idx, cache, scratch),
    )
}

/// [`evaluate_batch_indexed`] with one [`CancelToken`] per query
/// (aligned with `qs`). A query whose token fires mid-join yields
/// `None` — its partial rows are discarded, never surfaced as a
/// complete answer — while the other queries finish normally.
pub fn evaluate_batch_indexed_cancellable(
    qs: &[ConjunctiveQuery],
    idx: &DbIndex,
    batch: BatchOptions,
    cancels: &[CancelToken],
) -> Vec<Option<Vec<Tuple>>> {
    assert_eq!(qs.len(), cancels.len(), "one token per query");
    map_with(
        qs.len(),
        batch,
        || (PlanCache::new(), JoinScratch::new()),
        |(cache, scratch), i| {
            scratch.set_cancel(cancels[i].clone());
            let rows = evaluate_indexed_with(&qs[i], idx, cache, scratch);
            let cancelled = scratch.cancelled();
            scratch.clear_cancel();
            if cancelled {
                None
            } else {
                Some(rows)
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn agrees_with_sequential_across_thread_counts() {
        let p = parse_program(
            "relation R(a, b). relation S(b, c).
             Q1(x, z) :- R(x, y), S(y, z).
             Q2(x) :- R(x, x).
             Q3(x) :- R(x, y), S(y, 3).
             Q4() :- R(x, y), R(y, x).",
        )
        .unwrap();
        let mut db = Database::new(&p.catalog);
        for (a, b) in [(1i64, 2), (2, 1), (2, 3), (3, 3), (5, 6)] {
            db.insert_named("R", [a, b]).unwrap();
        }
        for (a, b) in [(2i64, 3), (3, 3), (6, 1)] {
            db.insert_named("S", [a, b]).unwrap();
        }
        let seq = cqchase_storage::evaluate_batch(&p.queries, &db);
        for threads in [1usize, 2, 4] {
            let par = evaluate_batch(&p.queries, &db, BatchOptions::with_threads(threads));
            assert_eq!(par, seq, "{threads} threads");
        }
    }

    #[test]
    fn fired_token_cancels_only_its_query() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x, y) :- R(x, y).
             Q2(x) :- R(x, y), R(y, x).",
        )
        .unwrap();
        let mut db = Database::new(&p.catalog);
        for (a, b) in [(1i64, 2), (2, 1), (2, 3)] {
            db.insert_named("R", [a, b]).unwrap();
        }
        let idx = DbIndex::build(&db);
        let fired = CancelToken::unlimited();
        fired.cancel();
        let cancels = vec![fired, CancelToken::unlimited()];
        let seq = cqchase_storage::evaluate_batch(&p.queries, &db);
        for threads in [1usize, 4] {
            let out = evaluate_batch_indexed_cancellable(
                &p.queries,
                &idx,
                BatchOptions::with_threads(threads),
                &cancels,
            );
            assert!(out[0].is_none(), "fired query yields None @ {threads}");
            assert_eq!(out[1].as_ref(), Some(&seq[1]), "{threads} threads");
        }
    }
}
