//! Parallel batch containment.
//!
//! The unit of parallelism is a *chase group*: every pair sharing a
//! left-hand query `Q` reuses one chase of `Q` (when Σ permits exact
//! sharing — see [`cqchase_core::check_batch`]), so the group is the
//! finest grain that keeps the sequential engine's sharing. Groups run
//! on the executor's worker threads; within a group the sequential
//! engine runs unchanged, so results are bit-for-bit those of
//! [`cqchase_core::check_batch`] regardless of thread count.

use cqchase_core::{
    check_batch_cancellable as check_batch_seq_cancellable, ContainmentAnswer,
    ContainmentEngineError, ContainmentOptions, ContainmentPair,
};
use cqchase_index::{CancelToken, FxHashMap};
use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet};

use crate::pool::{map_with, BatchOptions};

/// Tests a batch of containments across worker threads.
///
/// Returns exactly what [`cqchase_core::check_batch`] returns for the
/// same inputs (and it *is* that function when `opts.threads == 1`);
/// the differential property tests in this crate hold every thread
/// count to that.
pub fn check_batch(
    queries: &[ConjunctiveQuery],
    pairs: &[ContainmentPair],
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
    batch: BatchOptions,
) -> Vec<Result<ContainmentAnswer, ContainmentEngineError>> {
    check_batch_cancellable(queries, pairs, sigma, catalog, opts, batch, None)
}

/// [`check_batch`] with an optional per-pair [`CancelToken`] slice
/// (aligned with `pairs`) — the serving layer's entry point. Fired
/// tokens turn their pairs into
/// [`ContainmentEngineError::Cancelled`](cqchase_core::ContainmentEngineError)
/// without disturbing the rest of the batch; tokens follow their pairs
/// to whichever worker runs the chase group.
pub fn check_batch_cancellable(
    queries: &[ConjunctiveQuery],
    pairs: &[ContainmentPair],
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
    batch: BatchOptions,
    cancels: Option<&[CancelToken]>,
) -> Vec<Result<ContainmentAnswer, ContainmentEngineError>> {
    if batch.threads <= 1 {
        return check_batch_seq_cancellable(queries, pairs, sigma, catalog, opts, cancels);
    }

    // Group pair positions by left query, preserving in-group order so
    // chase reuse follows the same expansion sequence as the sequential
    // engine.
    let mut order: Vec<usize> = Vec::new(); // group id per first sight
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (pos, p) in pairs.iter().enumerate() {
        let slot = groups.entry(p.q).or_insert_with(|| {
            order.push(p.q);
            Vec::new()
        });
        slot.push(pos);
    }
    let grouped: Vec<&[usize]> = order.iter().map(|q| groups[q].as_slice()).collect();

    // One task per group; chunk = 1 so idle workers steal whole groups.
    let task_opts = BatchOptions {
        threads: batch.threads,
        chunk: Some(1),
    };
    let group_results = map_with(
        grouped.len(),
        task_opts,
        // Per-worker reusable pair and token buffers.
        || (Vec::new(), Vec::new()),
        |bufs: &mut (Vec<ContainmentPair>, Vec<CancelToken>), g| {
            let (pair_buf, cancel_buf) = bufs;
            pair_buf.clear();
            pair_buf.extend(grouped[g].iter().map(|&pos| pairs[pos]));
            let group_cancels = cancels.map(|cs| {
                cancel_buf.clear();
                cancel_buf.extend(grouped[g].iter().map(|&pos| cs[pos].clone()));
                &cancel_buf[..]
            });
            check_batch_seq_cancellable(queries, pair_buf, sigma, catalog, opts, group_cancels)
        },
    );

    // Scatter group results back to original pair positions.
    let mut out: Vec<Option<Result<ContainmentAnswer, ContainmentEngineError>>> =
        Vec::with_capacity(pairs.len());
    out.resize_with(pairs.len(), || None);
    for (g, results) in group_results.into_iter().enumerate() {
        for (&pos, r) in grouped[g].iter().zip(results) {
            out[pos] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every pair answered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn agrees_with_sequential_across_thread_counts() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             A(x) :- R(x, y).
             B(x) :- R(x, y), R(y, z).
             C(x) :- R(x, y), R(y, z), R(z, w).
             D(x) :- R(y, x).",
        )
        .unwrap();
        let mut pairs = Vec::new();
        for q in 0..4 {
            for qp in 0..4 {
                pairs.push(ContainmentPair { q, q_prime: qp });
            }
        }
        let opts = ContainmentOptions::default();
        let seq = cqchase_core::check_batch(&p.queries, &pairs, &p.deps, &p.catalog, &opts);
        for threads in [1usize, 2, 4] {
            let par = check_batch(
                &p.queries,
                &pairs,
                &p.deps,
                &p.catalog,
                &opts,
                BatchOptions::with_threads(threads),
            );
            assert_eq!(par.len(), seq.len());
            for (i, (a, b)) in par.iter().zip(seq.iter()).enumerate() {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.contained, b.contained, "pair {i} @ {threads} threads");
                assert_eq!(a.exact, b.exact, "pair {i}");
                assert_eq!(a.witness, b.witness, "pair {i}");
                assert_eq!(a.bound, b.bound, "pair {i}");
            }
        }
    }

    #[test]
    fn fired_token_cancels_only_its_pair() {
        let p = parse_program(
            "relation R(a, b).
             A(x) :- R(x, y).
             B(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let pairs = vec![
            ContainmentPair { q: 0, q_prime: 1 },
            ContainmentPair { q: 1, q_prime: 0 },
            ContainmentPair { q: 0, q_prime: 0 },
        ];
        let fired = CancelToken::unlimited();
        fired.cancel();
        let cancels = vec![CancelToken::unlimited(), fired, CancelToken::unlimited()];
        let opts = ContainmentOptions::default();
        for threads in [1usize, 4] {
            let out = check_batch_cancellable(
                &p.queries,
                &pairs,
                &p.deps,
                &p.catalog,
                &opts,
                BatchOptions::with_threads(threads),
                Some(&cancels),
            );
            assert!(
                matches!(out[1], Err(ContainmentEngineError::Cancelled { .. })),
                "fired pair must cancel @ {threads} threads"
            );
            let seq = cqchase_core::check_batch(&p.queries, &pairs, &p.deps, &p.catalog, &opts);
            for i in [0usize, 2] {
                let (a, b) = (out[i].as_ref().unwrap(), seq[i].as_ref().unwrap());
                assert_eq!(a.contained, b.contained, "pair {i} @ {threads} threads");
                assert_eq!(a.exact, b.exact, "pair {i}");
            }
        }
    }
}
