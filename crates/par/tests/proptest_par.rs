//! Differential property tests for the parallel batch engines: for
//! every thread count (1, 2, and N > cores), `check_batch` and
//! `evaluate_batch` must agree *exactly* with the sequential engines on
//! random workloads — same decisions, same witnesses, same answer sets,
//! same errors, in the same order.

use cqchase_core::{
    check_batch as check_batch_seq, ContainmentAnswer, ContainmentEngineError, ContainmentOptions,
    ContainmentPair,
};
use cqchase_ir::builder::TermSpec;
use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet, Fd, Ind, QueryBuilder};
use cqchase_par::{check_batch, evaluate_batch, evaluate_batch_indexed, BatchOptions};
use cqchase_storage::{evaluate_batch as evaluate_batch_seq, Database, DbIndex, Value};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const THREAD_COUNTS: [usize; 3] = [1, 2, 5];

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c.declare("S", ["x", "y"]).unwrap();
    c
}

/// Random small queries over R/S: 1–4 atoms, variables v0..v3, v0 the
/// head, occasional constants (the same shape `proptest_hom.rs` uses).
fn small_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (any::<bool>(), 0usize..4, 0usize..4, 0usize..6);
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| {
        let cat = catalog();
        let mut b = QueryBuilder::new("Q", &cat).head_vars(["v0"]);
        for (i, (use_s, x, y, c)) in atoms.iter().enumerate() {
            let rel = if *use_s { "S" } else { "R" };
            let x = if i == 0 { 0 } else { *x };
            b = if *c < 2 {
                b.atom(
                    rel,
                    [TermSpec::Var(format!("v{x}")), TermSpec::from(*c as i64)],
                )
                .unwrap()
            } else {
                b.atom(rel, [format!("v{x}"), format!("v{y}")]).unwrap()
            };
        }
        b.build().unwrap()
    })
}

/// Small dependency sets mixing FDs and (possibly cyclic) INDs —
/// exercising both the chase-sharing classes (one dependency kind) and
/// the fresh-chase-per-pair Mixed class.
fn sigmas() -> impl Strategy<Value = DependencySet> {
    proptest::collection::vec((0usize..5, any::<bool>()), 0..3).prop_map(|picks| {
        let cat = catalog();
        let r = cat.resolve("R").unwrap();
        let s = cat.resolve("S").unwrap();
        let mut out = DependencySet::new();
        for (k, flip) in picks {
            match k {
                0 => out.push(Fd::new(r, vec![0], 1)),
                1 => out.push(Fd::new(s, vec![0], 1)),
                2 => out.push(Ind::new(r, vec![usize::from(flip)], s, vec![0])),
                3 => out.push(Ind::new(s, vec![1], r, vec![usize::from(flip)])),
                _ => out.push(Ind::new(r, vec![1], r, vec![0])),
            }
        }
        out
    })
}

/// Random instances over the two binary relations, domain 0..4.
fn instances() -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec((0i64..4, 0i64..4), 0..8),
        proptest::collection::vec((0i64..4, 0i64..4), 0..8),
    )
        .prop_map(|(rs, ss)| {
            let c = catalog();
            let mut db = Database::new(&c);
            for (a, b) in rs {
                db.insert_named("R", [a, b]).unwrap();
            }
            for (a, b) in ss {
                db.insert_named("S", [a, b]).unwrap();
            }
            db
        })
}

/// Every decision field of two containment outcomes must coincide. The
/// chase-size diagnostics (`levels_explored`, `chase_conjuncts`,
/// `chase_steps`) are execution artifacts of chase sharing and are
/// compared by the sequential batch engine's own tests, not here.
fn assert_same_outcome(
    a: &Result<ContainmentAnswer, ContainmentEngineError>,
    b: &Result<ContainmentAnswer, ContainmentEngineError>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            prop_assert_eq!(x.contained, y.contained, "contained: {}", ctx);
            prop_assert_eq!(x.exact, y.exact, "exact: {}", ctx);
            prop_assert_eq!(x.empty_chase, y.empty_chase, "empty_chase: {}", ctx);
            prop_assert_eq!(x.bound, y.bound, "bound: {}", ctx);
            prop_assert_eq!(&x.class, &y.class, "class: {}", ctx);
            prop_assert_eq!(&x.witness, &y.witness, "witness: {}", ctx);
        }
        (Err(x), Err(y)) => prop_assert_eq!(x, y, "errors: {}", ctx),
        _ => prop_assert!(false, "Ok/Err disagreement: {}", ctx),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `check_batch` under 1, 2, and N threads ≡ the sequential engine.
    #[test]
    fn parallel_containment_agrees(
        qs in proptest::collection::vec(small_query(), 2..5),
        sigma in sigmas(),
    ) {
        let cat = catalog();
        let opts = ContainmentOptions::default();
        let mut pairs = Vec::new();
        for q in 0..qs.len() {
            for q_prime in 0..qs.len() {
                pairs.push(ContainmentPair { q, q_prime });
            }
        }
        let seq = check_batch_seq(&qs, &pairs, &sigma, &cat, &opts);
        for threads in THREAD_COUNTS {
            let par = check_batch(
                &qs, &pairs, &sigma, &cat, &opts,
                BatchOptions::with_threads(threads),
            );
            prop_assert_eq!(par.len(), seq.len());
            for (i, (a, b)) in par.iter().zip(seq.iter()).enumerate() {
                assert_same_outcome(a, b, &format!("pair {i}, {threads} threads"))?;
            }
        }
    }

    /// `evaluate_batch` under 1, 2, and N threads ≡ the sequential
    /// engine, element for element.
    #[test]
    fn parallel_eval_agrees(
        qs in proptest::collection::vec(small_query(), 1..8),
        db in instances(),
    ) {
        let seq = evaluate_batch_seq(&qs, &db);
        for threads in THREAD_COUNTS {
            let par = evaluate_batch(&qs, &db, BatchOptions::with_threads(threads));
            prop_assert_eq!(&par, &seq, "{} threads", threads);
        }
    }

    /// A **mutated** shared index (inserts + deletes + tombstones +
    /// guaranteed compactions + capacity shrinking applied
    /// incrementally) evaluates across worker threads bit-identically
    /// to a from-scratch index on the same final facts — the
    /// live-session update path runs exactly this shape: mutate under
    /// a write lock, then fan out reads.
    #[test]
    fn parallel_eval_agrees_on_mutated_index(
        qs in proptest::collection::vec(small_query(), 1..6),
        db in instances(),
        preamble_keep in 0i64..8,
        deltas in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0i64..4, 0i64..4), 1..24),
    ) {
        let cat = catalog();
        let r = cat.resolve("R").unwrap();
        let s = cat.resolve("S").unwrap();
        let mut db = db;
        let mut idx = DbIndex::build(&db);
        // Preamble: bulk-insert a disjoint key range, then delete all
        // but `preamble_keep` of it — the tombstone count crosses the
        // adaptive compaction threshold deterministically, so every
        // case exercises renumbering (and shrinking) before the random
        // deltas land on the renumbered rows.
        for i in 0..96i64 {
            let t = vec![Value::int(100 + i), Value::int(100 + i)];
            if db.insert(r, t.clone()).unwrap() {
                idx.note_insert(r, &t);
            }
        }
        for i in preamble_keep..96i64 {
            let t = vec![Value::int(100 + i), Value::int(100 + i)];
            if db.remove(r, &t).unwrap() {
                prop_assert!(idx.note_remove(r, &t));
            }
        }
        prop_assert!(idx.compactions() > 0, "preamble must force a compaction");
        for (is_delete, use_s, a, b) in deltas {
            let rel = if use_s { s } else { r };
            let t = vec![Value::int(a), Value::int(b)];
            if is_delete {
                if db.remove(rel, &t).unwrap() {
                    prop_assert!(idx.note_remove(rel, &t));
                }
            } else if db.insert(rel, t.clone()).unwrap() {
                idx.note_insert(rel, &t);
            }
        }
        let fresh = DbIndex::build(&db);
        let seq = evaluate_batch_indexed(&qs, &fresh, BatchOptions::with_threads(1));
        for threads in THREAD_COUNTS {
            let par = evaluate_batch_indexed(&qs, &idx, BatchOptions::with_threads(threads));
            prop_assert_eq!(&par, &seq, "{} threads over the mutated index", threads);
        }
    }
}
