//! Differential property tests: the indexed join engine and the
//! retained naive scan-based search must agree on homomorphism
//! existence — against query targets and against (partial) chases.

use cqchase_core::chase::{Chase, ChaseBudget, ChaseMode};
use cqchase_core::hom::{find_chase_hom, find_hom, naive, HomTarget};
use cqchase_core::{check_batch, contained, ContainmentOptions, ContainmentPair};
use cqchase_ir::builder::TermSpec;
use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet, Fd, Ind, QueryBuilder};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c.declare("S", ["x", "y"]).unwrap();
    c
}

/// Random small queries over R/S: 1–4 atoms, variables v0..v3, v0 is the
/// head, occasional constants.
fn small_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (any::<bool>(), 0usize..4, 0usize..4, 0usize..6);
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| {
        let cat = catalog();
        let mut b = QueryBuilder::new("Q", &cat).head_vars(["v0"]);
        for (i, (use_s, x, y, c)) in atoms.iter().enumerate() {
            let rel = if *use_s { "S" } else { "R" };
            let x = if i == 0 { 0 } else { *x };
            b = if *c < 2 {
                // Constant in the second position.
                b.atom(
                    rel,
                    [TermSpec::Var(format!("v{x}")), TermSpec::from(*c as i64)],
                )
                .unwrap()
            } else {
                b.atom(rel, [format!("v{x}"), format!("v{y}")]).unwrap()
            };
        }
        b.build().unwrap()
    })
}

/// Small dependency sets mixing FDs and (possibly cyclic) INDs.
fn sigmas() -> impl Strategy<Value = DependencySet> {
    proptest::collection::vec((0usize..5, any::<bool>()), 0..3).prop_map(|picks| {
        let cat = catalog();
        let r = cat.resolve("R").unwrap();
        let s = cat.resolve("S").unwrap();
        let mut out = DependencySet::new();
        for (k, flip) in picks {
            match k {
                0 => out.push(Fd::new(r, vec![0], 1)),
                1 => out.push(Fd::new(s, vec![0], 1)),
                2 => out.push(Ind::new(r, vec![usize::from(flip)], s, vec![0])),
                3 => out.push(Ind::new(s, vec![1], r, vec![usize::from(flip)])),
                _ => out.push(Ind::new(r, vec![1], r, vec![0])),
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed and naive searches agree on hom existence into query
    /// targets (the Chandra–Merlin primitive).
    #[test]
    fn query_targets_agree(q in small_query(), t in small_query()) {
        let cat = catalog();
        let target = HomTarget::from_query(&t, &cat);
        let fast = find_hom(&q, &target);
        let slow = naive::find_hom(&q, &target);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        // Any witness the indexed engine returns must be valid at some
        // level the naive engine can also certify: both targets are
        // level 0 throughout, so levels agree trivially.
        if let (Some(f), Some(s)) = (&fast, &slow) {
            prop_assert_eq!(f.max_level, 0);
            prop_assert_eq!(s.max_level, 0);
        }
    }

    /// Indexed search straight off the chase's incremental indexes
    /// agrees with both flattened-target searches, level for level.
    #[test]
    fn chase_targets_agree(q in small_query(), qp in small_query(), sigma in sigmas()) {
        let cat = catalog();
        let mut ch = Chase::new(&q, &sigma, &cat, ChaseMode::Required);
        ch.expand_to_level(3, ChaseBudget { max_steps: 500, max_conjuncts: 1_000 });
        for level in [0u32, 1, 3, u32::MAX] {
            let target = HomTarget::from_chase(ch.state(), level);
            let flat_fast = find_hom(&qp, &target);
            let flat_slow = naive::find_hom(&qp, &target);
            let live = find_chase_hom(&qp, ch.state(), level);
            prop_assert_eq!(flat_fast.is_some(), flat_slow.is_some(), "level {}", level);
            prop_assert_eq!(live.is_some(), flat_slow.is_some(), "level {}", level);
            // A witness never uses rows above the level cut.
            if let Some(h) = &live {
                prop_assert!(h.max_level <= level);
            }
        }
    }

    /// The sequential batch engine (chase sharing + cached plans +
    /// reused scratch) decides exactly like per-pair `contained`:
    /// same decisions, same witness existence, same errors. (Witness
    /// *identity* is not promised: a shared chase that already
    /// completed is searched whole, a fresh one level by level, so
    /// equally valid but different certificates can come back.)
    #[test]
    fn batch_containment_agrees_with_per_pair(
        qs in proptest::collection::vec(small_query(), 2..5),
        sigma in sigmas(),
    ) {
        let cat = catalog();
        let opts = ContainmentOptions::default();
        let mut pairs = Vec::new();
        for q in 0..qs.len() {
            for q_prime in 0..qs.len() {
                pairs.push(ContainmentPair { q, q_prime });
            }
        }
        let batch = check_batch(&qs, &pairs, &sigma, &cat, &opts);
        for (p, got) in pairs.iter().zip(batch.iter()) {
            let want = contained(&qs[p.q], &qs[p.q_prime], &sigma, &cat, &opts);
            match (got, &want) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.contained, b.contained, "pair {:?}", p);
                    prop_assert_eq!(a.exact, b.exact, "pair {:?}", p);
                    prop_assert_eq!(a.empty_chase, b.empty_chase, "pair {:?}", p);
                    prop_assert_eq!(a.bound, b.bound, "pair {:?}", p);
                    prop_assert_eq!(&a.class, &b.class, "pair {:?}", p);
                    prop_assert_eq!(
                        a.witness.is_some(),
                        b.witness.is_some(),
                        "witness existence: pair {:?}",
                        p
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "pair {:?}", p),
                _ => prop_assert!(false, "Ok/Err disagreement on pair {:?}", p),
            }
        }
    }
}
