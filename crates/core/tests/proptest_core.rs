//! Property tests on the chase and containment engines: the paper's
//! structural lemmas checked on randomized inputs.

use cqchase_core::chase::{CTerm, Chase, ChaseBudget, ChaseMode, ChaseStatus};
use cqchase_core::classify::{classify, SigmaClass};
use cqchase_core::contained;
use cqchase_core::containment::{ChaseBudgetOpt, ContainmentOptions};
use cqchase_core::inference::{implies_fd, implies_fd_via_chase};
use cqchase_ir::{parse_program, Catalog, ConjunctiveQuery, DependencySet, Fd, Ind, QueryBuilder};
use cqchase_storage::{satisfies, Database, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c.declare("S", ["x", "y"]).unwrap();
    c
}

fn small_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (any::<bool>(), 0usize..3, 0usize..3);
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| {
        let cat = catalog();
        let mut b = QueryBuilder::new("Q", &cat).head_vars(["v0"]);
        for (i, (use_s, x, y)) in atoms.iter().enumerate() {
            let rel = if *use_s { "S" } else { "R" };
            let (x, y) = if i == 0 { (0, *y) } else { (*x, *y) };
            b = b.atom(rel, [format!("v{x}"), format!("v{y}")]).unwrap();
        }
        b.build().unwrap()
    })
}

/// Acyclic-or-single-cycle IND sets plus optional FDs over R/S.
fn sigmas() -> impl Strategy<Value = DependencySet> {
    proptest::collection::vec((0usize..5, any::<bool>()), 0..3).prop_map(|picks| {
        let cat = catalog();
        let r = cat.resolve("R").unwrap();
        let s = cat.resolve("S").unwrap();
        let mut out = DependencySet::new();
        for (k, flip) in picks {
            match k {
                0 => out.push(Fd::new(r, vec![0], 1)),
                1 => out.push(Fd::new(s, vec![0], 1)),
                2 => out.push(Ind::new(r, vec![usize::from(flip)], s, vec![0])),
                3 => out.push(Ind::new(s, vec![1], r, vec![usize::from(flip)])),
                _ => out.push(Ind::new(r, vec![1], r, vec![0])),
            }
        }
        out
    })
}

/// Interprets a (partial) chase as a database over string symbols.
fn chase_as_database(ch: &Chase, cat: &Catalog) -> Database {
    let mut db = Database::new(cat);
    for (_, c) in ch.state().alive_conjuncts() {
        let t: Vec<Value> = c
            .terms
            .iter()
            .map(|t| match t {
                CTerm::Const(k) => Value::Const(k.clone()),
                CTerm::Var(v) => Value::str(&ch.state().var_info(*v).name),
            })
            .collect();
        db.insert(c.rel, t).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A chase that terminates satisfies Σ when viewed as a database —
    /// the paper's "the resulting query will, when viewed as a database,
    /// obey all the dependencies in Σ".
    #[test]
    fn complete_chase_obeys_sigma(q in small_query(), sigma in sigmas()) {
        let cat = catalog();
        for mode in [ChaseMode::Required, ChaseMode::Oblivious] {
            let mut ch = Chase::new(&q, &sigma, &cat, mode);
            let status = ch.run_to_completion(ChaseBudget {
                max_steps: 2_000,
                max_conjuncts: 5_000,
            });
            if status == ChaseStatus::Complete {
                let db = chase_as_database(&ch, &cat);
                prop_assert!(satisfies(&db, &sigma), "{mode:?} chase must obey Σ");
            }
        }
    }

    /// The R-chase never exceeds the O-chase in live conjuncts at equal
    /// levels (required applications are a subset of oblivious ones).
    #[test]
    fn r_chase_no_larger_than_o_chase(q in small_query(), sigma in sigmas()) {
        let cat = catalog();
        let levels = 3;
        let budget = ChaseBudget { max_steps: 2_000, max_conjuncts: 5_000 };
        let mut r = Chase::new(&q, &sigma, &cat, ChaseMode::Required);
        let rs = r.expand_to_level(levels, budget);
        let mut o = Chase::new(&q, &sigma, &cat, ChaseMode::Oblivious);
        let os = o.expand_to_level(levels, budget);
        // Only comparable when both fully built the requested levels.
        if rs != ChaseStatus::BudgetExhausted && os != ChaseStatus::BudgetExhausted {
            let rh = r.state().level_histogram();
            let oh = o.state().level_histogram();
            for (lvl, rn) in rh.iter().enumerate() {
                let on = oh.get(lvl).copied().unwrap_or(0);
                prop_assert!(on >= *rn, "level {lvl}: O {on} < R {rn}");
            }
        }
    }

    /// Witness levels respect the Theorem 2 bound on certified classes.
    #[test]
    fn witness_respects_bound(q in small_query(), qp in small_query(), sigma in sigmas()) {
        let cat = catalog();
        if classify(&sigma, &cat) == SigmaClass::Mixed {
            return Ok(());
        }
        let opts = ContainmentOptions {
            budget: ChaseBudgetOpt(ChaseBudget { max_steps: 1_000, max_conjuncts: 4_000 }),
            ..Default::default()
        };
        if let Ok(ans) = contained(&q, &qp, &sigma, &cat, &opts) {
            if let Some(w) = ans.witness {
                prop_assert!(w.max_level <= ans.bound,
                    "witness level {} above bound {}", w.max_level, ans.bound);
            }
        }
    }

    /// FD implication: attribute closure agrees with the two-row tableau
    /// chase on FD-only Σ.
    #[test]
    fn fd_closure_agrees_with_tableau(
        fds in proptest::collection::vec((0usize..2, 0usize..2), 0..3),
        goal in (0usize..2, 0usize..2),
    ) {
        let p = parse_program("relation T(p, q).").unwrap();
        let t = p.catalog.resolve("T").unwrap();
        let mut sigma = DependencySet::new();
        for (l, r) in fds {
            if l != r {
                sigma.push(Fd::new(t, vec![l], r));
            }
        }
        let (gl, gr) = goal;
        if gl == gr {
            return Ok(());
        }
        let fd = Fd::new(t, vec![gl], gr);
        let via_closure = implies_fd(&sigma, &fd);
        let via_chase = implies_fd_via_chase(&sigma, &fd, &p.catalog, ChaseBudget::default());
        prop_assert_eq!(via_chase, Some(via_closure));
    }

    /// Failed chases are empty and contained in everything.
    #[test]
    fn failed_chase_is_vacuous(qp in small_query()) {
        let p = parse_program(
            "relation R(a, b). relation S(x, y).
             fd R: a -> b.
             Bot(x) :- R(x, 1), R(x, 2), S(x, x).",
        )
        .unwrap();
        let ans = contained(
            p.query("Bot").unwrap(),
            &qp,
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        );
        // Output arities match (both 1), so the call succeeds and is
        // vacuously positive.
        let ans = ans.unwrap();
        prop_assert!(ans.contained && ans.empty_chase);
    }
}
