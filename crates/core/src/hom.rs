//! Query homomorphisms — the decision primitive of Theorem 1.
//!
//! A *query homomorphism* from `Q′` to a target (another query, or a
//! chase viewed as a query) is a symbol mapping that fixes constants,
//! sends every conjunct of `Q′` onto a conjunct of the target, and maps
//! the summary row of `Q′` onto the target's summary row.
//!
//! Both kinds of target are flattened into a [`HomTarget`] so one search
//! serves Chandra–Merlin containment (Σ = ∅), the classical FD-chase
//! test, and the bounded IND-chase test. The search itself is the shared
//! indexed join engine of [`cqchase_index`]: targets carry per-column
//! posting lists built at construction, and [`find_hom`] never scans a
//! relation's full row vector per atom. The seed's scan-based search is
//! retained in [`naive`] as a differential-testing reference.

use cqchase_index::{
    compile, join_with, CancelToken, ColumnIndex, CompiledQuery, FactSource, FrozenSymPool,
    JoinOutcome, JoinScratch, Sym, SymPool,
};
use cqchase_ir::{Catalog, ConjunctiveQuery, Constant, RelId, Term, VarId};

use crate::chase::{CTerm, ChaseState, ConjId};

/// A symbol of a homomorphism target: a constant or an abstract node
/// (variable of the target query / chase symbol).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TSym {
    /// A constant — homomorphisms must map constants to themselves.
    Const(Constant),
    /// An abstract target symbol, identified by an ordinal.
    Node(u64),
}

/// One row (conjunct/tuple) of a homomorphism target.
#[derive(Debug, Clone)]
pub struct TargetRow {
    /// The row's symbols, one per column.
    pub syms: Vec<TSym>,
    /// Caller-meaningful identifier (conjunct id for chases, atom index
    /// for queries).
    pub tag: u32,
    /// Chase level of the row (0 for query targets).
    pub level: u32,
}

/// A flattened homomorphism target: rows per relation plus the summary
/// row the homomorphism must preserve, with prebuilt column indexes.
///
/// Targets are built once and only read afterwards (the symbol pool is
/// frozen at construction), so a `HomTarget` is `Send + Sync` and can be
/// probed concurrently from many worker threads.
#[derive(Debug, Clone)]
pub struct HomTarget {
    rows: Vec<Vec<TargetRow>>,
    summary: Vec<TSym>,
    /// Interned symbol space (rows and summary symbols), frozen.
    pool: FrozenSymPool<TSym>,
    /// Posting lists over the interned rows.
    cols: ColumnIndex,
    /// Interned rows, flattened per relation (arity-strided).
    sym_rows: Vec<Vec<Sym>>,
    /// Arity per relation (0 for relations without rows).
    arities: Vec<usize>,
}

impl HomTarget {
    /// Builds the index side of a target from its rows and summary.
    fn build(rows: Vec<Vec<TargetRow>>, summary: Vec<TSym>) -> HomTarget {
        let mut pool = SymPool::new();
        let arities: Vec<usize> = rows
            .iter()
            .map(|rs| rs.first().map_or(0, |r| r.syms.len()))
            .collect();
        let mut cols = ColumnIndex::new(arities.iter().copied());
        let mut sym_rows: Vec<Vec<Sym>> = Vec::with_capacity(rows.len());
        for (r, rs) in rows.iter().enumerate() {
            let rel = RelId(r as u32);
            let mut flat = Vec::with_capacity(rs.len() * arities[r]);
            for (i, row) in rs.iter().enumerate() {
                let start = flat.len();
                for s in &row.syms {
                    flat.push(pool.intern(s));
                }
                cols.insert_row(rel, i as u32, &flat[start..]);
            }
            sym_rows.push(flat);
        }
        // Summary symbols may not occur in any row (e.g. head constants);
        // intern them so pre-binding always has a symbol to bind to.
        for s in &summary {
            pool.intern(s);
        }
        HomTarget {
            rows,
            summary,
            pool: pool.freeze(),
            cols,
            sym_rows,
            arities,
        }
    }

    /// Builds a target from a query: nodes are its variables, rows its
    /// atoms, the summary its head.
    pub fn from_query(q: &ConjunctiveQuery, catalog: &Catalog) -> HomTarget {
        let conv = |t: &Term| match t {
            Term::Const(c) => TSym::Const(c.clone()),
            Term::Var(v) => TSym::Node(u64::from(v.0)),
        };
        let mut rows = vec![Vec::new(); catalog.len()];
        for (i, a) in q.atoms.iter().enumerate() {
            rows[a.relation.index()].push(TargetRow {
                syms: a.terms.iter().map(conv).collect(),
                tag: i as u32,
                level: 0,
            });
        }
        HomTarget::build(rows, q.head.iter().map(conv).collect())
    }

    /// Builds a target from a (partial) chase, keeping only live
    /// conjuncts with level ≤ `max_level` (pass `u32::MAX` for all).
    /// Nodes are chase symbols; the summary is the chase's (possibly
    /// FD-rewritten) summary row.
    ///
    /// For repeated searches against a *growing* chase prefer
    /// [`find_chase_hom`], which reuses the chase's own incremental
    /// indexes instead of flattening the state per call.
    pub fn from_chase(state: &ChaseState, max_level: u32) -> HomTarget {
        let conv = |t: &CTerm| match t {
            CTerm::Const(c) => TSym::Const(c.clone()),
            CTerm::Var(v) => TSym::Node(u64::from(v.0)),
        };
        let mut rows = vec![Vec::new(); state.catalog().len()];
        for (id, c) in state.alive_conjuncts() {
            if c.level <= max_level {
                rows[c.rel.index()].push(TargetRow {
                    syms: c.terms.iter().map(conv).collect(),
                    tag: id.0,
                    level: c.level,
                });
            }
        }
        HomTarget::build(rows, state.summary().iter().map(conv).collect())
    }

    /// Assembles a target from pre-built rows (indexed by relation id)
    /// and a summary row. Used by constructions that are neither queries
    /// nor chases (e.g. the Theorem 3 `Q*`).
    pub fn from_parts(rows: Vec<Vec<TargetRow>>, summary: Vec<TSym>) -> HomTarget {
        HomTarget::build(rows, summary)
    }

    /// The target's summary row.
    pub fn summary(&self) -> &[TSym] {
        &self.summary
    }

    /// Rows of `rel`.
    pub fn rows(&self, rel: RelId) -> &[TargetRow] {
        &self.rows[rel.index()]
    }

    /// Total row count.
    pub fn len(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Whether the target has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FactSource for HomTarget {
    fn rel_size(&self, rel: RelId) -> usize {
        self.rows[rel.index()].len()
    }

    fn row_syms(&self, rel: RelId, row: u32) -> &[Sym] {
        let a = self.arities[rel.index()];
        let start = row as usize * a;
        &self.sym_rows[rel.index()][start..start + a]
    }

    fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
        self.cols.posting_len(rel, col, sym)
    }

    fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
        if bound.is_empty() {
            out.extend(0..self.rows[rel.index()].len() as u32);
        } else {
            self.cols
                .candidates(rel, bound, |row| self.row_syms(rel, row), out);
        }
    }

    fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
        self.pool.get(&TSym::Const(c.clone()))
    }

    fn distinct_count(&self, rel: RelId, col: usize) -> usize {
        self.cols.distinct_count(rel, col)
    }
}

/// A witness homomorphism from a source query into a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Homomorphism {
    /// Image of each source variable (indexed by `VarId`); `None` for
    /// variables not occurring in the source's body or head.
    pub var_images: Vec<Option<TSym>>,
    /// For each source atom, the `tag` of the target row it maps onto.
    pub atom_images: Vec<u32>,
    /// Maximum target-row level used (the *witness level* of Theorem 2).
    pub max_level: u32,
}

/// Pre-binds source head variables against a target summary row.
/// Returns `None` on a direct conflict (constant mismatch or two summary
/// positions forcing one variable to two symbols).
fn bind_summary(
    head: &[Term],
    summary: &[TSym],
    num_vars: usize,
    mut sym_of: impl FnMut(&TSym) -> Option<Sym>,
) -> Option<Vec<Option<Sym>>> {
    if head.len() != summary.len() {
        return None;
    }
    let mut bind: Vec<Option<Sym>> = vec![None; num_vars];
    for (t, s) in head.iter().zip(summary.iter()) {
        match t {
            Term::Const(c) => {
                if !matches!(s, TSym::Const(sc) if sc == c) {
                    return None;
                }
            }
            Term::Var(v) => {
                let sym = sym_of(s)?;
                match bind[v.index()] {
                    Some(b) if b != sym => return None,
                    _ => bind[v.index()] = Some(sym),
                }
            }
        }
    }
    Some(bind)
}

/// Searches for a query homomorphism from `source` into `target` that
/// maps the source's summary row onto the target's summary row.
///
/// Returns `None` when the output arities differ or no homomorphism
/// exists.
pub fn find_hom(source: &ConjunctiveQuery, target: &HomTarget) -> Option<Homomorphism> {
    find_hom_with(source, target, &mut JoinScratch::new())
}

/// [`find_hom`] with caller-owned scratch space — the batch layer's
/// entry point (one scratch per worker thread, zero steady-state
/// allocation in the search).
pub fn find_hom_with(
    source: &ConjunctiveQuery,
    target: &HomTarget,
    scratch: &mut JoinScratch,
) -> Option<Homomorphism> {
    let cq = compile(source, target)?;
    probe(source, target, &cq, scratch)
}

/// One summary-preserving probe with an already-compiled plan: the
/// shared tail of [`find_hom_with`] and [`HomFinder::find`].
fn probe(
    source: &ConjunctiveQuery,
    target: &HomTarget,
    cq: &CompiledQuery,
    scratch: &mut JoinScratch,
) -> Option<Homomorphism> {
    let pre = bind_summary(&source.head, target.summary(), source.vars.len(), |s| {
        target.pool.get(s)
    })?;
    let mut found: Option<Homomorphism> = None;
    let outcome = join_with(target, cq, &pre, scratch, |bind, rows| {
        let mut max_level = 0;
        let atom_images: Vec<u32> = rows
            .iter()
            .enumerate()
            .map(|(i, &row)| {
                let r = &target.rows[source.atoms[i].relation.index()][row as usize];
                max_level = max_level.max(r.level);
                r.tag
            })
            .collect();
        found = Some(Homomorphism {
            var_images: bind
                .iter()
                .map(|b| b.map(|s| target.pool.resolve(s).clone()))
                .collect(),
            atom_images,
            max_level,
        });
        true
    });
    // A cancelled search also reports `Stopped`, but without a final
    // emission — callers consult their token to tell the cases apart.
    debug_assert!((outcome == JoinOutcome::Stopped) == found.is_some() || scratch.cancelled());
    found
}

/// A reusable homomorphism probe `source → target` over a **fixed**
/// [`HomTarget`]: the source query is compiled once (cost-based order,
/// acyclicity certificate and all) and the join scratch is reused, so
/// repeated probes pay only the search itself. This is the production
/// shape of every hot containment loop — per-call [`find_hom`] spends a
/// measurable fraction of short probes recompiling the plan.
///
/// The target is frozen at construction, so the plan can never go stale
/// (no drift check needed — contrast [`ChaseHomFinder`]).
#[derive(Debug)]
pub struct HomFinder<'q, 't> {
    source: &'q ConjunctiveQuery,
    target: &'t HomTarget,
    /// Compile result, computed eagerly; `None` means some source
    /// constant is absent from the target — no homomorphism can exist.
    plan: Option<CompiledQuery>,
    scratch: JoinScratch,
}

impl<'q, 't> HomFinder<'q, 't> {
    /// Compiles `source` against `target` once.
    pub fn new(source: &'q ConjunctiveQuery, target: &'t HomTarget) -> HomFinder<'q, 't> {
        HomFinder {
            source,
            target,
            plan: compile(source, target),
            scratch: JoinScratch::new(),
        }
    }

    /// Searches for a summary-preserving homomorphism, reusing the
    /// compiled plan and scratch. Same answer as
    /// [`find_hom`]`(source, target)`.
    pub fn find(&mut self) -> Option<Homomorphism> {
        let cq = self.plan.as_ref()?;
        probe(self.source, self.target, cq, &mut self.scratch)
    }
}

/// Chandra–Merlin containment primitive: a homomorphism `q_to → q_from`
/// (note the direction: `Q ⊆ Q′` iff `Q′` maps into `Q`).
pub fn find_query_hom(
    from: &ConjunctiveQuery,
    into: &ConjunctiveQuery,
    catalog: &Catalog,
) -> Option<Homomorphism> {
    find_hom(from, &HomTarget::from_query(into, catalog))
}

/// Searches for a homomorphism into a (partial) chase truncated at
/// `max_level`, using the chase's incrementally maintained indexes (no
/// per-call target flattening).
///
/// For repeated probes against the *same growing chase* (the
/// containment loop checks once per level) use a [`ChaseHomFinder`],
/// which compiles the source query once and reuses its join scratch.
pub fn find_chase_hom(
    source: &ConjunctiveQuery,
    state: &ChaseState,
    max_level: u32,
) -> Option<Homomorphism> {
    ChaseHomFinder::new(source).find(state, max_level)
}

/// A reusable homomorphism probe `source → chase`, for the containment
/// engine's per-level rechecks.
///
/// The compiled plan embeds symbols resolved against the chase's
/// constant pool. That pool is fully populated when the chase is
/// initialized from its query (IND applications only mint fresh
/// variables, FD substitutions only reuse existing terms), so the plan
/// stays valid as the chase grows — but it is **per chase**: probing a
/// different `ChaseState` with the same finder is a logic error.
#[derive(Debug)]
pub struct ChaseHomFinder<'q> {
    source: &'q ConjunctiveQuery,
    /// `None` until the first probe; then the compile result (which may
    /// itself be `None`: some source constant is absent from the chase,
    /// so no level can ever admit a homomorphism).
    plan: Option<Option<CompiledQuery>>,
    scratch: JoinScratch,
}

impl<'q> ChaseHomFinder<'q> {
    /// A finder for homomorphisms from `source`.
    pub fn new(source: &'q ConjunctiveQuery) -> ChaseHomFinder<'q> {
        ChaseHomFinder {
            source,
            plan: None,
            scratch: JoinScratch::new(),
        }
    }

    /// Installs a [`CancelToken`] on the finder's join scratch: probes
    /// stop at coalesced intervals once it fires. A cancelled probe
    /// returns `None` **without** certifying absence — check
    /// [`ChaseHomFinder::cancelled`] before trusting a negative.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.scratch.set_cancel(token);
    }

    /// Whether the latest probe was cut short by the cancel token.
    pub fn cancelled(&self) -> bool {
        self.scratch.cancelled()
    }

    /// Searches for a homomorphism into `state` truncated at
    /// `max_level`, compiling the source query on the first call and
    /// recompiling when the chase has grown ≥2x past the plan's stats
    /// snapshot (the chase doubles per level, so a stale ordering would
    /// otherwise persist across the whole containment loop).
    pub fn find(&mut self, state: &ChaseState, max_level: u32) -> Option<Homomorphism> {
        let view = state.hom_source(max_level);
        let pre = bind_summary(
            &self.source.head,
            &view.summary_tsyms(),
            self.source.vars.len(),
            |s| view.sym_of_tsym(s),
        )?;
        if let Some(Some(cq)) = &self.plan {
            if cq.stats_drifted(&view) {
                // Constants only ever get interned (IND steps mint fresh
                // variables, FD steps reuse terms), so a recompile of a
                // previously satisfiable plan stays satisfiable.
                self.plan = None;
            }
        }
        let plan = self.plan.get_or_insert_with(|| compile(self.source, &view));
        let cq = plan.as_ref()?;
        let mut found: Option<Homomorphism> = None;
        join_with(&view, cq, &pre, &mut self.scratch, |bind, rows| {
            let mut max_used = 0;
            let atom_images: Vec<u32> = rows
                .iter()
                .map(|&row| {
                    max_used = max_used.max(state.conjunct(ConjId(row)).level);
                    row
                })
                .collect();
            found = Some(Homomorphism {
                var_images: bind.iter().map(|b| b.map(|s| view.tsym_of(s))).collect(),
                atom_images,
                max_level: max_used,
            });
            true
        });
        found
    }
}

/// Resolves a homomorphism's atom image tags back to chase conjunct ids.
pub fn atom_images_as_conjuncts(h: &Homomorphism) -> Vec<ConjId> {
    h.atom_images.iter().map(|&t| ConjId(t)).collect()
}

/// Renders a witness homomorphism `source → chase` as a human-readable
/// certificate: one line per variable mapping and one per conjunct
/// image. This is the "short proof" of Theorem 2's NP membership made
/// printable.
pub fn render_chase_witness(
    h: &Homomorphism,
    source: &ConjunctiveQuery,
    state: &ChaseState,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "witness homomorphism (max level {}):", h.max_level);
    for (i, img) in h.var_images.iter().enumerate() {
        let Some(img) = img else { continue };
        let name = source.vars.name(VarId(i as u32));
        match img {
            TSym::Const(c) => {
                let _ = writeln!(out, "  {name} -> {c}");
            }
            TSym::Node(n) => {
                let v = crate::chase::CVar(*n as u32);
                let _ = writeln!(out, "  {name} -> {}", state.var_info(v).name);
            }
        }
    }
    for (i, &tag) in h.atom_images.iter().enumerate() {
        let id = ConjId(tag);
        let _ = writeln!(
            out,
            "  atom {} -> [{}] {} (level {})",
            i,
            tag,
            state.render_conjunct(id),
            state.conjunct(id).level
        );
    }
    out
}

/// The seed's scan-based homomorphism search, retained verbatim as the
/// differential-testing and benchmarking reference for the indexed
/// engine. Per atom it loops over **all** target rows of the atom's
/// relation — correct, and the behavior the property tests compare the
/// indexed engine against.
pub mod naive {
    use std::collections::BTreeSet;

    use cqchase_ir::{ConjunctiveQuery, Term, VarId};

    use super::{HomTarget, Homomorphism, TSym, TargetRow};

    struct Search<'a> {
        source: &'a ConjunctiveQuery,
        target: &'a HomTarget,
        bind: Vec<Option<TSym>>,
        atom_rows: Vec<u32>,
        atom_levels: Vec<u32>,
    }

    impl Search<'_> {
        fn try_row(&mut self, atom_idx: usize, row: &TargetRow) -> Option<Vec<VarId>> {
            let atom = &self.source.atoms[atom_idx];
            let mut newly = Vec::new();
            for (t, s) in atom.terms.iter().zip(row.syms.iter()) {
                let ok = match t {
                    Term::Const(c) => matches!(s, TSym::Const(sc) if sc == c),
                    Term::Var(v) => match &self.bind[v.index()] {
                        Some(b) => b == s,
                        None => {
                            self.bind[v.index()] = Some(s.clone());
                            newly.push(*v);
                            true
                        }
                    },
                };
                if !ok {
                    for u in &newly {
                        self.bind[u.index()] = None;
                    }
                    return None;
                }
            }
            Some(newly)
        }

        fn solve(&mut self, order: &[usize], depth: usize) -> bool {
            if depth == order.len() {
                return true;
            }
            let atom_idx = order[depth];
            let rel = self.source.atoms[atom_idx].relation;
            let n_rows = self.target.rows(rel).len();
            for r in 0..n_rows {
                let row = self.target.rows(rel)[r].clone();
                if let Some(newly) = self.try_row(atom_idx, &row) {
                    self.atom_rows[atom_idx] = row.tag;
                    self.atom_levels[atom_idx] = row.level;
                    if self.solve(order, depth + 1) {
                        return true;
                    }
                    for u in newly {
                        self.bind[u.index()] = None;
                    }
                }
            }
            false
        }
    }

    /// Greedy atom order: most bound symbols first, fewer candidate rows
    /// as tie-break.
    fn atom_order(
        q: &ConjunctiveQuery,
        target: &HomTarget,
        pre_bound: &[Option<TSym>],
    ) -> Vec<usize> {
        let n = q.atoms.len();
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        let mut bound: BTreeSet<VarId> = pre_bound
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| VarId(i as u32))
            .collect();
        for _ in 0..n {
            let mut best: Option<(usize, usize, usize)> = None;
            for (i, atom) in q.atoms.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let score = atom
                    .terms
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count();
                let size = target.rows(atom.relation).len();
                let better = match best {
                    None => true,
                    Some((_, s, sz)) => score > s || (score == s && size < sz),
                };
                if better {
                    best = Some((i, score, size));
                }
            }
            let (i, _, _) = best.expect("unused atom exists");
            used[i] = true;
            bound.extend(q.atoms[i].vars());
            order.push(i);
        }
        order
    }

    /// The scan-based equivalent of [`super::find_hom`].
    pub fn find_hom(source: &ConjunctiveQuery, target: &HomTarget) -> Option<Homomorphism> {
        if source.head.len() != target.summary().len() {
            return None;
        }
        let mut bind: Vec<Option<TSym>> = vec![None; source.vars.len()];
        for (t, s) in source.head.iter().zip(target.summary().iter()) {
            match t {
                Term::Const(c) => {
                    if !matches!(s, TSym::Const(sc) if sc == c) {
                        return None;
                    }
                }
                Term::Var(v) => match &bind[v.index()] {
                    Some(b) => {
                        if b != s {
                            return None;
                        }
                    }
                    None => bind[v.index()] = Some(s.clone()),
                },
            }
        }
        let order = atom_order(source, target, &bind);
        let mut search = Search {
            source,
            target,
            bind,
            atom_rows: vec![0; source.atoms.len()],
            atom_levels: vec![0; source.atoms.len()],
        };
        if search.solve(&order, 0) {
            Some(Homomorphism {
                max_level: search.atom_levels.iter().copied().max().unwrap_or(0),
                var_images: search.bind,
                atom_images: search.atom_rows,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn identity_hom_exists() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y), R(y, x).").unwrap();
        let q = &p.queries[0];
        let h = find_query_hom(q, q, &p.catalog).unwrap();
        assert_eq!(h.atom_images.len(), 2);
        assert_eq!(h.max_level, 0);
    }

    #[test]
    fn chandra_merlin_direction() {
        // Q ⊆ Q′ without dependencies iff hom Q′ → Q.
        // Q(x) :- R(x, y), R(y, z)  is contained in  Q′(x) :- R(x, y).
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y), R(y, z).
             Qp(x) :- R(x, w).",
        )
        .unwrap();
        let q = p.query("Q").unwrap();
        let qp = p.query("Qp").unwrap();
        assert!(find_query_hom(qp, q, &p.catalog).is_some());
        assert!(find_query_hom(q, qp, &p.catalog).is_none());
    }

    #[test]
    fn summary_must_be_preserved() {
        // Both queries have a body hom, but the summary rows must align:
        // Q(x) :- R(x, y) and Qy(y) :- R(x, y) are incomparable.
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y).
             Qy(y2) :- R(x2, y2).",
        )
        .unwrap();
        let q = p.query("Q").unwrap();
        let qy = p.query("Qy").unwrap();
        assert!(find_query_hom(q, qy, &p.catalog).is_none());
        assert!(find_query_hom(qy, q, &p.catalog).is_none());
    }

    #[test]
    fn constants_fixed() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, 1).
             Q2(x) :- R(x, y).",
        )
        .unwrap();
        let q1 = p.query("Q1").unwrap();
        let q2 = p.query("Q2").unwrap();
        // Q1 ⊆ Q2: map y ↦ 1.
        assert!(find_query_hom(q2, q1, &p.catalog).is_some());
        // Q2 ⊄ Q1: constant 1 has no preimage.
        assert!(find_query_hom(q1, q2, &p.catalog).is_none());
    }

    #[test]
    fn repeated_vars_constrain() {
        let p = parse_program(
            "relation R(a, b).
             Qxx(x) :- R(x, x).
             Qxy(x) :- R(x, y).",
        )
        .unwrap();
        let qxx = p.query("Qxx").unwrap();
        let qxy = p.query("Qxy").unwrap();
        // R(x,x) ⊆ R(x,y): hom sends y ↦ x.
        assert!(find_query_hom(qxy, qxx, &p.catalog).is_some());
        assert!(find_query_hom(qxx, qxy, &p.catalog).is_none());
    }

    #[test]
    fn hom_into_chase_levels() {
        use crate::chase::{Chase, ChaseBudget, ChaseMode};
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let mut ch = Chase::new(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            ChaseMode::Required,
        );
        ch.expand_to_level(3, ChaseBudget::default());
        let qp = p.query("Qp").unwrap();
        // At level 0 only R(x, y) exists: no hom for the 2-chain.
        assert!(find_chase_hom(qp, ch.state(), 0).is_none());
        // With level 1 the chase has R(y, n): the chain maps.
        let h = find_chase_hom(qp, ch.state(), 1).unwrap();
        assert_eq!(h.max_level, 1);
    }

    #[test]
    fn witness_renders() {
        use crate::chase::{Chase, ChaseBudget, ChaseMode};
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let mut ch = Chase::new(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            ChaseMode::Required,
        );
        ch.expand_to_level(2, ChaseBudget::default());
        let qp = p.query("Qp").unwrap();
        let h = find_chase_hom(qp, ch.state(), 2).unwrap();
        let text = render_chase_witness(&h, qp, ch.state());
        assert!(text.contains("max level 1"), "{text}");
        assert!(text.contains("atom 0"), "{text}");
        assert!(text.contains("atom 1"), "{text}");
        assert!(text.contains("x ->"), "{text}");
    }

    #[test]
    fn boolean_source() {
        let p = parse_program(
            "relation R(a, b).
             B() :- R(x, x).
             Q() :- R(u, v).",
        )
        .unwrap();
        let b = p.query("B").unwrap();
        let q = p.query("Q").unwrap();
        // Q ⊆ B is false (hom B → Q needs R(x,x) image); B ⊆ Q is true.
        assert!(find_query_hom(b, q, &p.catalog).is_none());
        assert!(find_query_hom(q, b, &p.catalog).is_some());
    }

    #[test]
    fn arity_mismatch_is_none() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y).
             Q2(x, y2) :- R(x, y2).",
        )
        .unwrap();
        assert!(
            find_query_hom(p.query("Q1").unwrap(), p.query("Q2").unwrap(), &p.catalog).is_none()
        );
    }

    #[test]
    fn empty_target_no_hom() {
        let p = parse_program(
            "relation R(a, b). relation S(a).
             Q(x) :- R(x, y).
             Qs(x) :- R(x, y), S(x).",
        )
        .unwrap();
        // Qs needs an S row; Q's target has none.
        assert!(
            find_query_hom(p.query("Qs").unwrap(), p.query("Q").unwrap(), &p.catalog).is_none()
        );
    }

    #[test]
    fn indexed_agrees_with_naive_on_query_targets() {
        let p = parse_program(
            "relation R(a, b). relation S(a, b).
             A(x) :- R(x, y), S(y, z), R(z, x).
             B(x) :- R(x, y), S(y, y).
             C(x) :- R(x, x).
             D(x) :- R(x, y), R(y, z), S(z, 1).",
        )
        .unwrap();
        let names = ["A", "B", "C", "D"];
        for from in names {
            for into in names {
                let target = HomTarget::from_query(p.query(into).unwrap(), &p.catalog);
                let fast = find_hom(p.query(from).unwrap(), &target);
                let slow = naive::find_hom(p.query(from).unwrap(), &target);
                assert_eq!(
                    fast.is_some(),
                    slow.is_some(),
                    "hom {from} -> {into} disagreement"
                );
            }
        }
    }
}
