//! The chase of a conjunctive query with respect to a set of FDs and
//! INDs (paper, Section 3).
//!
//! The FD rule merges symbols; the IND rule adds conjuncts (possibly
//! forever). Two disciplines are provided, selected by [`ChaseMode`]:
//! the **O-chase** (oblivious: apply every IND once to every applicable
//! conjunct) and the **R-chase** (required: apply only when no witness
//! exists, recording cross arcs otherwise).
//!
//! The driver is *incremental*: [`Chase::expand_to_level`] builds the
//! chase breadth-first by level, so potentially infinite chases can be
//! explored up to the Theorem 2 bound ([`theorem2_bound`]) — which is
//! exactly what the containment engine does.

pub mod bound;
mod driver;
mod fd;
pub mod graph;
mod ind;
mod state;

pub use bound::{theorem2_bound, theorem2_bound_raw};
pub use driver::{
    Chase, ChaseBudget, ChaseMode, ChaseStatus, DEFAULT_MAX_CONJUNCTS, DEFAULT_MAX_STEPS,
};
pub use state::{
    ArcKind, CTerm, CVar, CVarInfo, CVarOrigin, ChaseArc, ChaseState, ConjId, Conjunct,
};

use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet};

/// Convenience: runs the chase of `q` w.r.t. `deps` to completion under
/// `budget`. Returns the chase and its final status — remember that IND
/// chases may be infinite, in which case the status is
/// [`ChaseStatus::BudgetExhausted`] and the state holds a partial chase.
pub fn chase_query(
    q: &ConjunctiveQuery,
    deps: &DependencySet,
    catalog: &Catalog,
    mode: ChaseMode,
    budget: ChaseBudget,
) -> (Chase, ChaseStatus) {
    let mut ch = Chase::new(q, deps, catalog, mode);
    let status = ch.run_to_completion(budget);
    (ch, status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn chase_query_convenience() {
        let p = parse_program(
            "relation R(a). relation S(a).
             ind R[1] <= S[1].
             Q(x) :- R(x).",
        )
        .unwrap();
        let (ch, status) = chase_query(
            &p.queries[0],
            &p.deps,
            &p.catalog,
            ChaseMode::Required,
            ChaseBudget::default(),
        );
        assert_eq!(status, ChaseStatus::Complete);
        assert_eq!(ch.state().num_alive(), 2);
    }

    /// Maier–Mendelzon–Sagiv determinism: chasing twice yields the same
    /// state (our construction is canonical, so even names agree).
    #[test]
    fn chase_is_deterministic() {
        let src = "relation R(a, b). relation S(a, b).
             fd R: a -> b. ind R[2] <= S[1]. ind S[1] <= R[1].
             Q(x) :- R(x, y), R(x, z), S(y, w).";
        let p = parse_program(src).unwrap();
        let render = |_: u32| {
            let mut ch = Chase::new(&p.queries[0], &p.deps, &p.catalog, ChaseMode::Required);
            ch.expand_to_level(4, ChaseBudget::default());
            let st = ch.state();
            st.alive_conjuncts()
                .map(|(id, _)| st.render_conjunct(id))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(0), render(1));
    }

    /// The finished chase, viewed as a database, obeys Σ (the paper's
    /// stability observation) — verified via the storage layer.
    #[test]
    fn complete_chase_obeys_sigma() {
        use cqchase_ir::Constant;
        use cqchase_storage::{satisfies, Database, Value};

        let p = parse_program(
            "relation R(a, b). relation S(a, b). relation T(a).
             fd R: a -> b.
             ind R[2] <= S[1]. ind S[2] <= T[1].
             Q(x) :- R(x, y), R(x, z), S(y, q).",
        )
        .unwrap();
        let (ch, status) = chase_query(
            &p.queries[0],
            &p.deps,
            &p.catalog,
            ChaseMode::Required,
            ChaseBudget::default(),
        );
        assert_eq!(status, ChaseStatus::Complete);
        // Interpret each chase symbol as a distinct constant.
        let mut db = Database::new(&p.catalog);
        for (_, c) in ch.state().alive_conjuncts() {
            let tuple: Vec<Value> = c
                .terms
                .iter()
                .map(|t| match t {
                    CTerm::Const(k) => Value::Const(k.clone()),
                    CTerm::Var(v) => Value::Const(Constant::str(&ch.state().var_info(*v).name)),
                })
                .collect();
            db.insert(c.rel, tuple).unwrap();
        }
        assert!(satisfies(&db, &p.deps));
    }
}
