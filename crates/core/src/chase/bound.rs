//! The Theorem 2 level bound.
//!
//! The paper's Lemma 5 confines homomorphism images to chase levels
//! `≤ |C| · |Σ| · (W+1)^W` where `C = h(Q′)` (so `|C| ≤ |Q′|`), `|Σ|` is
//! the number of dependencies and `W` the maximum IND width. Theorem 2
//! then decides `Σ ⊨ Q ⊆∞ Q′` by searching for a homomorphism from `Q′`
//! into the chase truncated at that level.
//!
//! The bound is doubly exponential in `W` as written, so we compute it in
//! saturating `u128` and clamp to `u32::MAX` levels (any chase that deep
//! exhausts every practical budget long before the clamp matters).

use cqchase_ir::{ConjunctiveQuery, DependencySet};

/// `(W+1)^W`, saturating.
fn w_term(w: u32) -> u128 {
    let base = u128::from(w) + 1;
    let mut acc: u128 = 1;
    for _ in 0..w {
        acc = acc.saturating_mul(base);
    }
    acc
}

/// The raw Theorem 2 bound `|Q′| · |Σ| · (W+1)^W` as a `u128`.
pub fn theorem2_bound_raw(q_prime_conjuncts: usize, sigma_len: usize, w: usize) -> u128 {
    (q_prime_conjuncts as u128)
        .saturating_mul(sigma_len as u128)
        .saturating_mul(w_term(w as u32))
}

/// The level bound for testing `Σ ⊨ Q ⊆∞ Q′`, clamped to `u32`.
///
/// A witness homomorphism, if any exists, maps `Q′` into conjuncts of
/// level at most this value (paper, proof of Theorem 2); exhausting the
/// chase to this level without finding one certifies non-containment.
pub fn theorem2_bound(q_prime: &ConjunctiveQuery, sigma: &DependencySet) -> u32 {
    let raw = theorem2_bound_raw(q_prime.num_atoms(), sigma.len(), sigma.max_ind_width());
    u32::try_from(raw.min(u128::from(u32::MAX))).expect("clamped")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn w_term_values() {
        assert_eq!(w_term(0), 1);
        assert_eq!(w_term(1), 2);
        assert_eq!(w_term(2), 9);
        assert_eq!(w_term(3), 64);
        assert_eq!(w_term(4), 625);
    }

    #[test]
    fn saturation_does_not_panic() {
        assert_eq!(theorem2_bound_raw(usize::MAX, usize::MAX, 200), u128::MAX);
    }

    #[test]
    fn bound_matches_formula() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let b = theorem2_bound(p.query("Qp").unwrap(), &p.deps);
        // |Q'| = 2, |Σ| = 1, W = 1 → 2 · 1 · 2 = 4.
        assert_eq!(b, 4);
    }

    #[test]
    fn no_inds_means_level_zero_only_times_sigma() {
        let p = parse_program(
            "relation R(a, b).
             fd R: a -> b.
             Q(x) :- R(x, y).
             Qp(x) :- R(x, y).",
        )
        .unwrap();
        // W = 0 → (W+1)^W = 1; bound = 1 · 1 · 1 = 1 (trivially covers the
        // level-0-only FD chase).
        assert_eq!(theorem2_bound(p.query("Qp").unwrap(), &p.deps), 1);
    }

    #[test]
    fn zero_conjuncts_bound_zero() {
        let p = parse_program("relation R(a). Q(x) :- R(x).").unwrap();
        assert_eq!(
            theorem2_bound(p.query("Q").unwrap(), &DependencySet::new()),
            0
        );
    }
}
