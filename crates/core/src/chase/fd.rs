//! The FD chase rule.
//!
//! > *FD CHASE RULE. Let `c₁`, `c₂`, and the FD be as above and identify
//! > the symbols `c₁[A]` and `c₂[A]` wherever they occur in the conjuncts
//! > and summary row of Q. If both were constants, delete all conjuncts
//! > from Q and halt. If one is a constant, let the combined symbol be
//! > that constant. If both are variables, choose the lexicographically
//! > first of the two.*
//!
//! We apply the rule deterministically: the lexicographically first pair
//! `(c₁, c₂)` (by conjunct id, which is creation order) with an
//! applicable FD, and the first applicable FD in Σ's declaration order —
//! realizing the paper's canonical-chase convention.
//!
//! Both halves run on the chase's incremental indexes: applicability is
//! found by hash-grouping / posting intersection
//! ([`ChaseState::find_applicable_fd`]) and the substitution rewrites
//! only the conjuncts actually containing the eliminated symbol
//! ([`ChaseState::substitute`]) — no quadratic pair scans, no whole-state
//! rewrite passes.

use cqchase_ir::Fd;

use super::state::{CTerm, ChaseState, ConjId, Merge};

/// The FD rule met two distinct constants: the chase is the empty query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdFailure;

/// Applies the FD rule to `(c1, c2, fd)`. On a constant clash the state
/// is marked failed and all conjuncts are deleted.
pub(crate) fn apply(
    state: &mut ChaseState,
    c1: ConjId,
    c2: ConjId,
    fd: &Fd,
) -> Result<Vec<Merge>, FdFailure> {
    let u = state.conjunct(c1).terms[fd.rhs].clone();
    let v = state.conjunct(c2).terms[fd.rhs].clone();
    debug_assert_ne!(u, v, "the FD must be applicable");
    let (from, to) = match (&u, &v) {
        (CTerm::Const(_), CTerm::Const(_)) => {
            state.fail();
            return Err(FdFailure);
        }
        (CTerm::Const(_), CTerm::Var(b)) => (*b, u),
        (CTerm::Var(a), CTerm::Const(_)) => (*a, v),
        (CTerm::Var(a), CTerm::Var(b)) => {
            // Lexicographically first symbol wins; ordinal order encodes
            // "DVs precede NDVs, earlier creations precede later ones".
            if a < b {
                (*b, u)
            } else {
                (*a, v)
            }
        }
    };
    Ok(state.substitute(from, &to))
}

/// Exhausts the FD rule: repeatedly finds and applies the canonical
/// applicable FD until none is applicable (or the chase fails). Returns
/// the number of applications and all merges.
///
/// `hint`: if the state was FD-quiescent except for one new conjunct,
/// pass it to restrict the *first* scan; subsequent scans (after a
/// substitution changed other conjuncts) are full.
pub(crate) fn fd_phase(
    state: &mut ChaseState,
    fds: &[Fd],
    hint: Option<ConjId>,
) -> Result<(usize, Vec<Merge>), FdFailure> {
    if fds.is_empty() {
        return Ok((0, Vec::new()));
    }
    let mut steps = 0usize;
    let mut merges = Vec::new();
    let mut involving = hint;
    loop {
        match state.find_applicable_fd(fds, involving) {
            Some((c1, c2, fd_idx)) => {
                let fd = fds[fd_idx].clone();
                merges.extend(apply(state, c1, c2, &fd)?);
                steps += 1;
                involving = None; // substitution may enable arbitrary pairs
            }
            None => return Ok((steps, merges)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::{parse_program, Program};

    fn state_of(src: &str) -> (Program, ChaseState, Vec<Fd>) {
        let p = parse_program(src).unwrap();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let fds: Vec<Fd> = p.deps.fds().cloned().collect();
        (p, st, fds)
    }

    #[test]
    fn merge_two_variables_keeps_lex_first() {
        // R(x, y), R(x, z) with R: a -> b forces y = z.
        let (_, mut st, fds) =
            state_of("relation R(a, b). fd R: a -> b. Q(x) :- R(x, y), R(x, z).");
        let (steps, merges) = fd_phase(&mut st, &fds, None).unwrap();
        assert_eq!(steps, 1);
        // The two conjuncts became identical and merged.
        assert_eq!(merges.len(), 1);
        assert_eq!(st.num_alive(), 1);
        // Surviving term is `y` (created before `z`, so lex-first).
        let (_, c) = st.alive_conjuncts().next().unwrap();
        let v = c.terms[1].as_var().unwrap();
        assert_eq!(st.var_info(v).name, "y");
    }

    #[test]
    fn dv_beats_ndv() {
        // Q(x, w) :- R(x, w), R(x, y): w is a DV, y an NDV; the combined
        // symbol must be the DV even though `y` was interned... DVs always
        // precede NDVs in the order.
        let (_, mut st, fds) =
            state_of("relation R(a, b). fd R: a -> b. Q(x, w) :- R(x, y), R(x, w).");
        fd_phase(&mut st, &fds, None).unwrap();
        let (_, c) = st.alive_conjuncts().next().unwrap();
        let v = c.terms[1].as_var().unwrap();
        assert_eq!(st.var_info(v).name, "w");
        // Summary row untouched (it already held w).
        assert_eq!(st.summary()[1], CTerm::Var(v));
    }

    #[test]
    fn constant_beats_variable() {
        let (_, mut st, fds) =
            state_of("relation R(a, b). fd R: a -> b. Q(x) :- R(x, y), R(x, 7).");
        fd_phase(&mut st, &fds, None).unwrap();
        assert_eq!(st.num_alive(), 1);
        let (_, c) = st.alive_conjuncts().next().unwrap();
        assert!(c.terms[1].is_const());
    }

    #[test]
    fn constant_clash_fails() {
        let (_, mut st, fds) =
            state_of("relation R(a, b). fd R: a -> b. Q(x) :- R(x, 1), R(x, 2).");
        let r = fd_phase(&mut st, &fds, None);
        assert_eq!(r, Err(FdFailure));
        assert!(st.is_failed());
        assert_eq!(st.num_alive(), 0);
    }

    #[test]
    fn cascading_applications() {
        // R: a -> b twice-removed: R(x,y), R(x,z), S(y,u), S(z,v) with
        // S: a -> b. After y=z the S conjuncts collide on u=v.
        let (_, mut st, fds) = state_of(
            "relation R(a, b). relation S(a, b).
             fd R: a -> b. fd S: a -> b.
             Q(x) :- R(x, y), R(x, z), S(y, u), S(z, v).",
        );
        let (steps, _) = fd_phase(&mut st, &fds, None).unwrap();
        assert_eq!(steps, 2);
        assert_eq!(st.num_alive(), 2);
    }

    #[test]
    fn no_fds_is_noop() {
        let (_, mut st, fds) = state_of("relation R(a, b). Q(x) :- R(x, y), R(x, z).");
        let (steps, merges) = fd_phase(&mut st, &fds, None).unwrap();
        assert_eq!(steps, 0);
        assert!(merges.is_empty());
        assert_eq!(st.num_alive(), 2);
    }

    #[test]
    fn summary_row_is_rewritten() {
        // The FD merges the head variable's *occurrence*: Q(x, w) with w
        // merged into y? No — lex order keeps the DV; ensure the summary
        // reflects whichever symbol survived.
        let (_, mut st, fds) =
            state_of("relation R(a, b). fd R: a -> b. Q(x, w) :- R(x, w), R(x, y).");
        fd_phase(&mut st, &fds, None).unwrap();
        // w (DV) survives; summary unchanged and both conjuncts merged.
        assert_eq!(st.num_alive(), 1);
        let (_, c) = st.alive_conjuncts().next().unwrap();
        assert_eq!(st.summary()[1], c.terms[1]);
    }

    #[test]
    fn composite_lhs() {
        let (_, mut st, fds) =
            state_of("relation R(a, b, c). fd R: a, b -> c. Q(x) :- R(x, x, u), R(x, x, v).");
        fd_phase(&mut st, &fds, None).unwrap();
        assert_eq!(st.num_alive(), 1);
    }

    #[test]
    fn lhs_mismatch_not_applicable() {
        let (_, mut st, fds) =
            state_of("relation R(a, b). fd R: a -> b. Q(x) :- R(x, u), R(y, v).");
        let (steps, _) = fd_phase(&mut st, &fds, None).unwrap();
        assert_eq!(steps, 0);
        assert_eq!(st.num_alive(), 2);
    }

    #[test]
    fn hinted_scan_matches_full_scan() {
        // After pushing a fresh conjunct into a quiescent state, the
        // hinted scan must find exactly what the full scan finds.
        let (_, mut st, fds) = state_of("relation R(a, b). fd R: a -> b. Q(x) :- R(x, y).");
        let x = st.summary()[0].clone();
        let n = st.fresh_var(1, ConjId(0), 0, 1);
        let new = st.push_conjunct(cqchase_ir::RelId(0), vec![x, CTerm::Var(n)], 1);
        let hinted = st.find_applicable_fd(&fds, Some(new));
        let full = st.find_applicable_fd(&fds, None);
        assert_eq!(hinted, full);
        assert_eq!(hinted, Some((ConjId(0), new, 0)));
    }
}
