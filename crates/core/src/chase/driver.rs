//! The chase driver: deterministic scheduling of FD and IND rule
//! applications, exactly as the paper prescribes.
//!
//! > *The following sequence of two instructions is repeated until there
//! > are no more applicable (required) dependencies:*
//! >
//! > *(1) While there is an applicable FD, choose one as above and apply
//! > it.*
//! >
//! > *(2) If a number of conjuncts have applicable (required) INDs,
//! > choose the lexicographically first from among those such conjuncts
//! > having minimum level, and apply the lexicographically first
//! > applicable (required) IND to it.*
//!
//! "Lexicographically first conjunct" is realized as smallest conjunct id
//! (creation order), and "lexicographically first IND" as Σ declaration
//! order — fixed canonical choices in the spirit of the paper's
//! convention (Maier, Mendelzon & Sagiv show the result is unique up to
//! variable renaming regardless).

use std::collections::BTreeSet;

use cqchase_index::{CancelToken, FxHashMap, FxHashSet};
use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet, Fd, Ind};

use super::fd::fd_phase;
use super::ind::{apply_ind, record_cross};
use super::state::{ChaseState, ConjId, Merge};

/// Which chase discipline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaseMode {
    /// The **O-chase**: every IND is applied (once) to every conjunct it
    /// is applicable to, including redundant applications. The paper uses
    /// this when Σ consists of INDs only.
    Oblivious,
    /// The **R-chase**: an IND is applied to a conjunct only when
    /// *required* (no witnessing conjunct exists); redundancies become
    /// cross arcs. The paper uses this for key-based Σ.
    Required,
}

/// Resource limits for chase expansion. IND chases can be infinite, so
/// every driver entry point takes a budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseBudget {
    /// Maximum number of scheduling steps (IND applications + witness
    /// skips) across the chase's lifetime.
    pub max_steps: usize,
    /// Maximum number of conjuncts ever created.
    pub max_conjuncts: usize,
}

/// Default cap on IND scheduling steps ([`ChaseBudget::max_steps`]).
///
/// Sized so a cyclic width-1 IND chase (one conjunct per level) can run
/// about a million levels deep before cutting off — far beyond any
/// Theorem 2 bound the test and experiment workloads produce, while
/// still bounding runaway Mixed-class chases to seconds, not hours.
/// Override per call site, or from the experiments CLI via
/// `--max-steps`.
pub const DEFAULT_MAX_STEPS: usize = 1_000_000;

/// Default cap on conjuncts ever created
/// ([`ChaseBudget::max_conjuncts`]).
///
/// Conjuncts dominate chase memory (terms plus posting/dedup/occurrence
/// index entries — roughly a few hundred bytes each), so a quarter
/// million caps a single chase at tens of megabytes. Override per call
/// site, or from the experiments CLI via `--max-conjuncts`.
pub const DEFAULT_MAX_CONJUNCTS: usize = 250_000;

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget {
            max_steps: DEFAULT_MAX_STEPS,
            max_conjuncts: DEFAULT_MAX_CONJUNCTS,
        }
    }
}

/// Why a driver call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseStatus {
    /// No applicable (required) dependencies remain — the chase is finite
    /// and fully constructed.
    Complete,
    /// The FD rule failed on a constant clash: the chase is the *empty
    /// query* (contained in everything).
    Failed,
    /// The requested level was fully built; pending work remains beyond
    /// it.
    LevelReached,
    /// The budget ran out before the target condition was met.
    BudgetExhausted,
    /// The installed [`CancelToken`] fired (deadline or explicit
    /// cancellation). Like [`ChaseStatus::BudgetExhausted`], the state
    /// holds a consistent partial chase and expansion can resume.
    Cancelled,
}

/// A chase in progress (or finished). Construct with [`Chase::new`], grow
/// with [`Chase::run_to_completion`] or [`Chase::expand_to_level`],
/// inspect through [`Chase::state`].
#[derive(Debug)]
pub struct Chase {
    state: ChaseState,
    mode: ChaseMode,
    fds: Vec<Fd>,
    inds: Vec<Ind>,
    /// Conjuncts that still have unprocessed applicable INDs, keyed by
    /// (level, id) so the scheduler's min is the paper's choice.
    pending: BTreeSet<(u32, ConjId)>,
    /// Side map: pending key currently stored for each conjunct (levels
    /// can shrink on FD merges).
    pending_key: FxHashMap<ConjId, u32>,
    /// `(conjunct, ind index)` pairs already handled.
    processed: FxHashSet<(ConjId, usize)>,
    steps: usize,
    fd_steps: usize,
    /// Cooperative stop signal, consulted once per scheduling step.
    cancel: Option<CancelToken>,
}

impl Chase {
    /// Initializes the chase: level-0 conjuncts from `q`, then the
    /// initial FD phase (instruction (1) run to quiescence).
    pub fn new(
        q: &ConjunctiveQuery,
        deps: &DependencySet,
        catalog: &Catalog,
        mode: ChaseMode,
    ) -> Chase {
        let mut state = ChaseState::from_query(q, catalog);
        let fds: Vec<Fd> = deps.fds().cloned().collect();
        let inds: Vec<Ind> = deps.inds().cloned().collect();
        let mut fd_steps = 0;
        if let Ok((n, _)) = fd_phase(&mut state, &fds, None) {
            fd_steps = n;
        }
        let mut chase = Chase {
            state,
            mode,
            fds,
            inds,
            pending: BTreeSet::new(),
            pending_key: FxHashMap::default(),
            processed: FxHashSet::default(),
            steps: 0,
            fd_steps,
            cancel: None,
        };
        if !chase.state.failed {
            let ids: Vec<ConjId> = chase.state.alive_conjuncts().map(|(id, _)| id).collect();
            for id in ids {
                chase.refresh_pending(id);
            }
        }
        chase
    }

    /// The chase mode.
    pub fn mode(&self) -> ChaseMode {
        self.mode
    }

    /// Installs (or replaces) a [`CancelToken`] consulted once per
    /// scheduling step — a fired token makes the driver return
    /// [`ChaseStatus::Cancelled`] between steps, never mid-step, so the
    /// partial chase stays consistent and expansion can resume after
    /// re-arming.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether the installed token (if any) has fired.
    fn cancel_fired(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::should_stop)
    }

    /// Read access to the current (partial) chase.
    pub fn state(&self) -> &ChaseState {
        &self.state
    }

    /// Total IND scheduling steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Total FD rule applications so far.
    pub fn fd_steps(&self) -> usize {
        self.fd_steps
    }

    /// Whether the chase has terminated on its own (no pending work).
    pub fn is_complete(&self) -> bool {
        self.state.failed || self.pending.is_empty()
    }

    /// The minimum level with unprocessed conjuncts. All conjuncts with
    /// level ≤ `frontier_level()` already exist; `None` means the chase
    /// is complete (every level of the finite chase is built).
    pub fn frontier_level(&self) -> Option<u32> {
        self.pending.iter().next().map(|&(l, _)| l)
    }

    /// Whether the IND at `ind_idx` applies to conjunct `id` and has not
    /// been handled yet.
    fn unprocessed_inds(&self, id: ConjId) -> impl Iterator<Item = usize> + '_ {
        let rel = self.state.conjunct(id).rel;
        self.inds
            .iter()
            .enumerate()
            .filter(move |(_, ind)| ind.lhs_rel == rel)
            .map(|(i, _)| i)
            .filter(move |i| !self.processed.contains(&(id, *i)))
    }

    fn refresh_pending(&mut self, id: ConjId) {
        let alive = self.state.conjunct(id).alive;
        let has_work = alive && self.unprocessed_inds(id).next().is_some();
        let level = self.state.conjunct(id).level;
        match (self.pending_key.get(&id).copied(), has_work) {
            (Some(old), true) if old == level => {}
            (Some(old), true) => {
                self.pending.remove(&(old, id));
                self.pending.insert((level, id));
                self.pending_key.insert(id, level);
            }
            (Some(old), false) => {
                self.pending.remove(&(old, id));
                self.pending_key.remove(&id);
            }
            (None, true) => {
                self.pending.insert((level, id));
                self.pending_key.insert(id, level);
            }
            (None, false) => {}
        }
    }

    fn absorb_merges(&mut self, merges: &[Merge]) {
        for m in merges {
            // The survivor has identical terms, so anything witnessed for
            // the dead conjunct is witnessed for the survivor; in O-mode,
            // the merged conjunct *is* one conjunct, so "applied once"
            // transfers too.
            for i in 0..self.inds.len() {
                if self.processed.contains(&(m.dead, i)) {
                    self.processed.insert((m.survivor, i));
                }
            }
            self.refresh_pending(m.dead);
            self.refresh_pending(m.survivor);
        }
        if !merges.is_empty() {
            // Levels may have shrunk anywhere; refresh every pending key.
            let ids: Vec<ConjId> = self.pending_key.keys().copied().collect();
            for id in ids {
                self.refresh_pending(id);
            }
        }
    }

    /// Performs one scheduling step: instruction (2) once, followed by
    /// instruction (1) to quiescence. Returns `false` when the chase is
    /// complete or failed.
    fn step_once(&mut self) -> bool {
        if self.state.failed {
            return false;
        }
        let Some(&(_, id)) = self.pending.iter().next() else {
            return false;
        };
        let Some(ind_idx) = self.unprocessed_inds(id).next() else {
            self.refresh_pending(id);
            return !self.pending.is_empty();
        };
        self.steps += 1;
        self.processed.insert((id, ind_idx));
        let witness = match self.mode {
            ChaseMode::Oblivious => {
                // The O-chase applies regardless; the only exception is an
                // IND covering every column of S, whose "new" conjunct is
                // term-identical to an existing one — conjunct sets don't
                // duplicate, so record the arc against the existing copy.
                let ind = &self.inds[ind_idx];
                if ind.rhs_cols.len() == self.state.catalog().arity(ind.rhs_rel) {
                    self.state.find_witness(ind, id)
                } else {
                    None
                }
            }
            ChaseMode::Required => self.state.find_witness(&self.inds[ind_idx], id),
        };
        match witness {
            Some(w) => {
                record_cross(&mut self.state, id, w, ind_idx);
            }
            None => {
                let ind = self.inds[ind_idx].clone();
                let child = apply_ind(&mut self.state, id, &ind, ind_idx);
                // Instruction (1): exhaust FDs, which only the new
                // conjunct can have triggered.
                if !self.fds.is_empty() {
                    match fd_phase(&mut self.state, &self.fds, Some(child)) {
                        Ok((n, merges)) => {
                            self.fd_steps += n;
                            self.absorb_merges(&merges);
                        }
                        Err(_) => {
                            return false;
                        }
                    }
                }
                if self.state.conjunct(child).alive {
                    self.refresh_pending(child);
                }
            }
        }
        self.refresh_pending(id);
        true
    }

    /// Runs until the chase completes or the budget is exhausted.
    pub fn run_to_completion(&mut self, budget: ChaseBudget) -> ChaseStatus {
        loop {
            if self.state.failed {
                return ChaseStatus::Failed;
            }
            if self.pending.is_empty() {
                return ChaseStatus::Complete;
            }
            if self.steps >= budget.max_steps
                || self.state.all_conjuncts().len() >= budget.max_conjuncts
            {
                return ChaseStatus::BudgetExhausted;
            }
            if self.cancel_fired() {
                return ChaseStatus::Cancelled;
            }
            self.step_once();
        }
    }

    /// Expands until every conjunct of level ≤ `level` exists (i.e. the
    /// frontier moved past `level − 1`), the chase completes, or the
    /// budget runs out.
    pub fn expand_to_level(&mut self, level: u32, budget: ChaseBudget) -> ChaseStatus {
        loop {
            if self.state.failed {
                return ChaseStatus::Failed;
            }
            match self.frontier_level() {
                None => return ChaseStatus::Complete,
                Some(f) if f >= level => return ChaseStatus::LevelReached,
                Some(_) => {}
            }
            if self.steps >= budget.max_steps
                || self.state.all_conjuncts().len() >= budget.max_conjuncts
            {
                return ChaseStatus::BudgetExhausted;
            }
            if self.cancel_fired() {
                return ChaseStatus::Cancelled;
            }
            self.step_once();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    fn chase_of(src: &str, mode: ChaseMode) -> Chase {
        let p = parse_program(src).unwrap();
        Chase::new(&p.queries[0], &p.deps, &p.catalog, mode)
    }

    #[test]
    fn acyclic_ind_chase_terminates() {
        let mut ch = chase_of(
            "relation EMP(eno, sal, dept). relation DEP(dno, loc).
             ind EMP[dept] <= DEP[dno].
             Q(e) :- EMP(e, s, d).",
            ChaseMode::Required,
        );
        let status = ch.run_to_completion(ChaseBudget::default());
        assert_eq!(status, ChaseStatus::Complete);
        assert!(ch.is_complete());
        // One new DEP conjunct at level 1.
        assert_eq!(ch.state().num_alive(), 2);
        assert_eq!(ch.state().level_histogram(), vec![1, 1]);
        assert_eq!(ch.steps(), 1);
    }

    #[test]
    fn required_application_skipped_when_witnessed() {
        let mut ch = chase_of(
            "relation EMP(eno, sal, dept). relation DEP(dno, loc).
             ind EMP[dept] <= DEP[dno].
             Q(e) :- EMP(e, s, d), DEP(d, l).",
            ChaseMode::Required,
        );
        let status = ch.run_to_completion(ChaseBudget::default());
        assert_eq!(status, ChaseStatus::Complete);
        // No new conjunct — the DEP atom already witnesses the IND.
        assert_eq!(ch.state().num_alive(), 2);
        // But the cross arc is recorded.
        assert_eq!(ch.state().arcs().len(), 1);
        assert_eq!(
            ch.state().arcs()[0].kind,
            super::super::state::ArcKind::Cross
        );
    }

    #[test]
    fn oblivious_applies_redundantly() {
        let mut ch = chase_of(
            "relation EMP(eno, sal, dept). relation DEP(dno, loc).
             ind EMP[dept] <= DEP[dno].
             Q(e) :- EMP(e, s, d), DEP(d, l).",
            ChaseMode::Oblivious,
        );
        let status = ch.run_to_completion(ChaseBudget::default());
        assert_eq!(status, ChaseStatus::Complete);
        // The O-chase adds DEP(d, n) even though DEP(d, l) exists.
        assert_eq!(ch.state().num_alive(), 3);
    }

    #[test]
    fn cyclic_ind_is_infinite() {
        let mut ch = chase_of(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).",
            ChaseMode::Required,
        );
        let status = ch.run_to_completion(ChaseBudget {
            max_steps: 100,
            max_conjuncts: 100,
        });
        assert_eq!(status, ChaseStatus::BudgetExhausted);
        assert!(!ch.is_complete());
        // Each level adds exactly one conjunct: R(x,y) → R(y,n1) → R(n1,n2)…
        let hist = ch.state().level_histogram();
        assert!(hist.iter().all(|&n| n == 1));
        assert!(hist.len() > 10);
    }

    #[test]
    fn expand_to_level_builds_exactly_enough() {
        let mut ch = chase_of(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).",
            ChaseMode::Required,
        );
        let status = ch.expand_to_level(5, ChaseBudget::default());
        assert_eq!(status, ChaseStatus::LevelReached);
        assert_eq!(ch.state().max_level(), Some(5));
        assert_eq!(ch.frontier_level(), Some(5));
        // Monotone growth: expanding further keeps earlier levels intact.
        let before: Vec<String> = ch
            .state()
            .alive_conjuncts()
            .map(|(id, _)| ch.state().render_conjunct(id))
            .collect();
        ch.expand_to_level(8, ChaseBudget::default());
        let after: Vec<String> = ch
            .state()
            .alive_conjuncts()
            .map(|(id, _)| ch.state().render_conjunct(id))
            .collect();
        assert_eq!(&after[..before.len()], &before[..]);
        assert_eq!(ch.state().max_level(), Some(8));
    }

    #[test]
    fn fd_failure_during_init() {
        let mut ch = chase_of(
            "relation R(a, b). fd R: a -> b.
             Q(x) :- R(x, 1), R(x, 2).",
            ChaseMode::Required,
        );
        assert!(ch.state().is_failed());
        assert_eq!(
            ch.run_to_completion(ChaseBudget::default()),
            ChaseStatus::Failed
        );
    }

    #[test]
    fn section4_sigma_rchase() {
        // Σ = {R:{2}→1, R[2]⊆R[1]} over Q1(x) :- R(x, y).
        // IND adds R(y, n1); FD (2→1 means col b determines col a) — the
        // new conjunct and nothing else share b-values, so no merge; the
        // chase keeps growing: infinite.
        let mut ch = chase_of(
            "relation R(a, b). fd R: b -> a. ind R[2] <= R[1].
             Q(x) :- R(x, y).",
            ChaseMode::Required,
        );
        let status = ch.run_to_completion(ChaseBudget {
            max_steps: 50,
            max_conjuncts: 50,
        });
        assert_eq!(status, ChaseStatus::BudgetExhausted);
    }

    #[test]
    fn fd_triggered_by_ind_merges() {
        // Key-based-violating mix where an IND child collides with an
        // existing conjunct via the FD: R(x,y) with IND R[1] ⊆ S[1] and
        // FD S: a -> b, plus an existing S(x, z): the created S(x, n)
        // merges with S(x, z) (n is an NDV created later, so z survives).
        let mut ch = chase_of(
            "relation R(a, b). relation S(a, b).
             fd S: a -> b. ind R[1] <= S[1].
             Q(x) :- R(x, y), S(x, z).",
            ChaseMode::Oblivious,
        );
        let status = ch.run_to_completion(ChaseBudget::default());
        assert_eq!(status, ChaseStatus::Complete);
        // The redundant O-chase child merged back into S(x, z).
        assert_eq!(ch.state().num_alive(), 2);
        assert!(ch.fd_steps() >= 1);
    }

    #[test]
    fn full_width_ind_oblivious_dedups_exact() {
        // IND covering all columns of S: the O-chase "new" conjunct is
        // term-identical to the witness; sets of conjuncts don't
        // duplicate.
        let mut ch = chase_of(
            "relation R(a, b). relation S(x, y).
             ind R[1, 2] <= S[1, 2].
             Q(x) :- R(x, y), S(x, y).",
            ChaseMode::Oblivious,
        );
        let status = ch.run_to_completion(ChaseBudget::default());
        assert_eq!(status, ChaseStatus::Complete);
        assert_eq!(ch.state().num_alive(), 2);
    }

    #[test]
    fn cancelled_chase_is_resumable() {
        let mut ch = chase_of(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).",
            ChaseMode::Required,
        );
        let token = CancelToken::unlimited();
        token.cancel();
        ch.set_cancel(token);
        assert_eq!(
            ch.run_to_completion(ChaseBudget::default()),
            ChaseStatus::Cancelled
        );
        // Re-arming with a live token resumes exactly where it stopped.
        ch.set_cancel(CancelToken::unlimited());
        let status = ch.expand_to_level(3, ChaseBudget::default());
        assert_eq!(status, ChaseStatus::LevelReached);
        assert_eq!(ch.frontier_level(), Some(3));
    }

    #[test]
    fn levels_follow_parents() {
        let mut ch = chase_of(
            "relation R(a). relation S(a). relation T(a).
             ind R[1] <= S[1]. ind S[1] <= T[1].
             Q(x) :- R(x).",
            ChaseMode::Required,
        );
        ch.run_to_completion(ChaseBudget::default());
        assert_eq!(ch.state().level_histogram(), vec![1, 1, 1]);
        // S child at level 1, T grandchild at level 2.
        let levels: Vec<u32> = ch.state().alive_conjuncts().map(|(_, c)| c.level).collect();
        assert_eq!(levels, vec![0, 1, 2]);
    }
}
