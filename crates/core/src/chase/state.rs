//! Chase state: symbols with a total lexicographic order, conjuncts with
//! levels, the summary row, the arc structure of the chase graph — and
//! the incrementally maintained indexes every chase-rule application and
//! homomorphism search runs against.
//!
//! The index side (constant pool, per-column posting lists, whole-row
//! dedup, per-variable occurrence lists) is derived data: every mutation
//! goes through [`ChaseState::push_conjunct`] /
//! [`ChaseState::substitute`] so the two views never diverge. This is
//! what lets the FD rule, the R-chase's witness checks, and
//! [`find_chase_hom`](crate::hom::find_chase_hom) run without rescanning
//! the conjunct vector.

use cqchase_index::{ColumnIndex, DedupIndex, FactSource, FxHashMap, Sym, SymPool};
use cqchase_ir::{Catalog, ConjunctiveQuery, Constant, Ind, RelId, Term, VarId, VarKind};

use crate::hom::TSym;

/// A chase symbol (variable) identified by its **ordinal**: the position
/// in the chase's symbol table.
///
/// The ordinal *is* the paper's lexicographic order: distinguished
/// variables of the original query come first, then its nondistinguished
/// variables, then every chase-created NDV in creation order ("this
/// symbol following all previously introduced symbols in the
/// lexicographic order used by the FD chase rule").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CVar(pub u32);

impl CVar {
    /// The ordinal as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term inside the chase: a constant or a chase symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CTerm {
    /// A constant (fixed by every homomorphism).
    Const(Constant),
    /// A chase variable.
    Var(CVar),
}

impl CTerm {
    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<CVar> {
        match self {
            CTerm::Var(v) => Some(*v),
            CTerm::Const(_) => None,
        }
    }

    /// Whether this is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, CTerm::Const(_))
    }
}

/// Where a chase symbol came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CVarOrigin {
    /// A variable of the original query.
    Query {
        /// Its id in the query's variable table.
        var: VarId,
        /// DV or NDV.
        kind: VarKind,
    },
    /// An NDV created by an IND chase-rule application. The fields encode
    /// the paper's naming scheme: "a name that encodes A, c, the IND, and
    /// the level of c′".
    Created {
        /// Column (attribute position) the symbol was created in.
        attr: usize,
        /// The conjunct the IND was applied to.
        parent: ConjId,
        /// Index of the IND in Σ's declaration order.
        ind_idx: usize,
        /// Level of the *created* conjunct.
        level: u32,
    },
}

/// Metadata for one chase symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CVarInfo {
    /// Provenance.
    pub origin: CVarOrigin,
    /// Display name (query variables keep their names; created NDVs get
    /// encoded names).
    pub name: String,
}

/// Identifier of a conjunct within the chase, assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConjId(pub u32);

impl ConjId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One conjunct (tuple) of the chase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conjunct {
    /// The relation this conjunct belongs to.
    pub rel: RelId,
    /// One term per column.
    pub terms: Vec<CTerm>,
    /// The paper's *level*: 0 for original conjuncts, parent's level + 1
    /// for IND-created ones, minimum on FD merges.
    pub level: u32,
    /// `false` once this conjunct has been merged into another by the FD
    /// rule (the survivor keeps `true`).
    pub alive: bool,
    /// When dead: who absorbed it.
    pub merged_into: Option<ConjId>,
}

/// Arc kinds of the chase graph (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcKind {
    /// The IND application created the target conjunct.
    Ordinary,
    /// (R-chase) the required conjunct already existed; points at it.
    Cross,
}

/// One labelled arc of the chase graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseArc {
    /// Source conjunct (the one the IND was applied to).
    pub from: ConjId,
    /// Target conjunct (created, or pre-existing for cross arcs).
    pub to: ConjId,
    /// Index of the IND in Σ's declaration order (the arc label).
    pub ind_idx: usize,
    /// Ordinary or cross.
    pub kind: ArcKind,
}

/// A merge of two conjuncts that became identical after a substitution:
/// `dead` was absorbed into `survivor` (which keeps the minimum level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Merge {
    /// The absorbed conjunct.
    pub dead: ConjId,
    /// The conjunct that remains alive.
    pub survivor: ConjId,
}

/// The derived index side of a chase state.
///
/// Symbols are encoded as `Sym(const_id << 1)` for interned constants and
/// `Sym(ordinal << 1 | 1)` for chase variables, so fresh variables never
/// touch the pool.
#[derive(Debug, Clone, Default)]
struct ChaseIndex {
    consts: SymPool<Constant>,
    /// Posting lists; row ids are `ConjId.0`.
    cols: ColumnIndex,
    /// Whole-row dedup over live conjuncts.
    dedup: DedupIndex,
    /// Interned terms per conjunct (ConjId-indexed, dead rows retained).
    sym_rows: Vec<Vec<Sym>>,
    /// Live conjunct ids per relation, ascending.
    rel_rows: Vec<Vec<u32>>,
    /// Live conjunct ids containing each chase variable, ascending.
    var_occ: Vec<Vec<u32>>,
}

impl ChaseIndex {
    fn const_sym(&mut self, c: &Constant) -> Sym {
        Sym(self.consts.intern(c).0 << 1)
    }

    fn var_sym(v: CVar) -> Sym {
        Sym((v.0 << 1) | 1)
    }

    fn term_sym(&mut self, t: &CTerm) -> Sym {
        match t {
            CTerm::Const(c) => self.const_sym(c),
            CTerm::Var(v) => ChaseIndex::var_sym(*v),
        }
    }

    fn sym_var(sym: Sym) -> Option<CVar> {
        (sym.0 & 1 == 1).then_some(CVar(sym.0 >> 1))
    }

    fn occ_insert(&mut self, sym: Sym, row: u32) {
        if let Some(v) = ChaseIndex::sym_var(sym) {
            if self.var_occ.len() <= v.index() {
                self.var_occ.resize(v.index() + 1, Vec::new());
            }
            let list = &mut self.var_occ[v.index()];
            if let Err(pos) = list.binary_search(&row) {
                list.insert(pos, row);
            }
        }
    }

    fn occ_remove(&mut self, sym: Sym, row: u32) {
        if let Some(v) = ChaseIndex::sym_var(sym) {
            if let Some(list) = self.var_occ.get_mut(v.index()) {
                if let Ok(pos) = list.binary_search(&row) {
                    list.remove(pos);
                }
            }
        }
    }
}

/// The complete (partial) chase: symbols, conjuncts, summary row, arcs.
#[derive(Debug, Clone)]
pub struct ChaseState {
    pub(crate) catalog: Catalog,
    pub(crate) vars: Vec<CVarInfo>,
    pub(crate) conjuncts: Vec<Conjunct>,
    pub(crate) summary: Vec<CTerm>,
    pub(crate) arcs: Vec<ChaseArc>,
    /// Set when the FD rule met two distinct constants: the chase is the
    /// empty query ("this query cannot be chased to an equivalent query
    /// obeying the given FD").
    pub(crate) failed: bool,
    index: ChaseIndex,
}

impl ChaseState {
    /// Initializes the state from a query: its conjuncts at level 0, its
    /// variables with DVs preceding NDVs in the symbol order. Syntactic
    /// duplicates collapse through the dedup index (the paper's `C_Q` is
    /// a *set* of conjuncts).
    pub(crate) fn from_query(q: &ConjunctiveQuery, catalog: &Catalog) -> ChaseState {
        // Map query VarIds to chase ordinals: DVs first (in VarId order),
        // then NDVs (in VarId order).
        let mut order: Vec<VarId> = q.vars.iter().map(|(v, _)| v).collect();
        order.sort_by_key(|&v| (q.vars.kind(v) != VarKind::Distinguished, v));
        let mut to_cvar: FxHashMap<VarId, CVar> = FxHashMap::default();
        let mut vars = Vec::with_capacity(order.len());
        for v in order {
            let cv = CVar(vars.len() as u32);
            to_cvar.insert(v, cv);
            vars.push(CVarInfo {
                origin: CVarOrigin::Query {
                    var: v,
                    kind: q.vars.kind(v),
                },
                name: q.vars.name(v).to_owned(),
            });
        }
        let conv = |t: &Term| match t {
            Term::Const(c) => CTerm::Const(c.clone()),
            Term::Var(v) => CTerm::Var(to_cvar[v]),
        };
        let mut state = ChaseState {
            catalog: catalog.clone(),
            vars,
            conjuncts: Vec::new(),
            summary: q.head.iter().map(conv).collect(),
            arcs: Vec::new(),
            failed: false,
            index: ChaseIndex {
                cols: ColumnIndex::new(catalog.rel_ids().map(|r| catalog.arity(r))),
                rel_rows: vec![Vec::new(); catalog.len()],
                ..ChaseIndex::default()
            },
        };
        for a in &q.atoms {
            let terms: Vec<CTerm> = a.terms.iter().map(conv).collect();
            state.push_conjunct_dedup(a.relation, terms, 0);
        }
        // Intern summary constants (head constants need not occur in any
        // conjunct, but homomorphism pre-binding must resolve them).
        let summary = state.summary.clone();
        for t in &summary {
            state.index.term_sym(t);
        }
        state
    }

    /// The catalog the chase runs against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Whether the FD rule failed on a constant clash (empty chase).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// The summary row (rewritten by FD merges as the chase proceeds).
    pub fn summary(&self) -> &[CTerm] {
        &self.summary
    }

    /// All conjunct slots, dead ones included (use
    /// [`ChaseState::alive_conjuncts`] for the live view).
    pub fn all_conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// The conjunct at `id`.
    pub fn conjunct(&self, id: ConjId) -> &Conjunct {
        &self.conjuncts[id.index()]
    }

    /// Live conjuncts with their ids, in creation order.
    pub fn alive_conjuncts(&self) -> impl Iterator<Item = (ConjId, &Conjunct)> {
        self.conjuncts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, c)| (ConjId(i as u32), c))
    }

    /// Number of live conjuncts.
    pub fn num_alive(&self) -> usize {
        self.index.rel_rows.iter().map(Vec::len).sum()
    }

    /// All arcs recorded so far.
    pub fn arcs(&self) -> &[ChaseArc] {
        &self.arcs
    }

    /// Symbol metadata by ordinal.
    pub fn var_info(&self, v: CVar) -> &CVarInfo {
        &self.vars[v.index()]
    }

    /// Number of symbols ever created.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Follows merge links to the live representative of `id`.
    pub fn resolve_conjunct(&self, mut id: ConjId) -> ConjId {
        while let Some(next) = self.conjuncts[id.index()].merged_into {
            id = next;
        }
        id
    }

    /// The maximum level among live conjuncts (`None` when the chase is
    /// empty, e.g. after failure).
    pub fn max_level(&self) -> Option<u32> {
        self.conjuncts
            .iter()
            .filter(|c| c.alive)
            .map(|c| c.level)
            .max()
    }

    /// Live conjunct count per level (index = level).
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut h = Vec::new();
        for c in self.conjuncts.iter().filter(|c| c.alive) {
            let l = c.level as usize;
            if h.len() <= l {
                h.resize(l + 1, 0);
            }
            h[l] += 1;
        }
        h
    }

    /// Creates a fresh NDV with the paper's provenance encoding; its name
    /// lexicographically follows all earlier symbols by construction
    /// (ordinal order *is* the order).
    pub(crate) fn fresh_var(
        &mut self,
        attr: usize,
        parent: ConjId,
        ind_idx: usize,
        level: u32,
    ) -> CVar {
        let cv = CVar(self.vars.len() as u32);
        let name = format!("n{}_c{}i{}a{}L{}", cv.0, parent.0, ind_idx, attr, level);
        self.vars.push(CVarInfo {
            origin: CVarOrigin::Created {
                attr,
                parent,
                ind_idx,
                level,
            },
            name,
        });
        cv
    }

    /// Appends a conjunct unconditionally, registering it in every index.
    /// The caller guarantees it is not a duplicate of a live conjunct
    /// (IND children carry fresh NDVs or were witness-checked first).
    pub(crate) fn push_conjunct(&mut self, rel: RelId, terms: Vec<CTerm>, level: u32) -> ConjId {
        let id = ConjId(self.conjuncts.len() as u32);
        let syms: Vec<Sym> = terms.iter().map(|t| self.index.term_sym(t)).collect();
        self.index.cols.insert_row(rel, id.0, &syms);
        let prev = self.index.dedup.insert(rel, &syms, id.0);
        debug_assert!(prev.is_none(), "push_conjunct must not duplicate a row");
        for &s in &syms {
            self.index.occ_insert(s, id.0);
        }
        let list = &mut self.index.rel_rows[rel.index()];
        debug_assert!(list.last().is_none_or(|&l| l < id.0));
        list.push(id.0);
        self.index.sym_rows.push(syms);
        self.conjuncts.push(Conjunct {
            rel,
            terms,
            level,
            alive: true,
            merged_into: None,
        });
        id
    }

    /// Appends a conjunct unless an identical live one exists (used for
    /// the level-0 conjuncts, where `C_Q` is a set). Returns the id of
    /// the representative.
    fn push_conjunct_dedup(&mut self, rel: RelId, terms: Vec<CTerm>, level: u32) -> ConjId {
        let syms: Vec<Sym> = terms.iter().map(|t| self.index.term_sym(t)).collect();
        if let Some(existing) = self.index.dedup.get(rel, &syms) {
            return ConjId(existing);
        }
        self.push_conjunct(rel, terms, level)
    }

    /// Kills `dead`, recording `survivor` as its representative; fixes
    /// every index. The caller has already rewritten terms so that both
    /// rows are identical.
    fn kill_conjunct(&mut self, dead: ConjId, survivor: ConjId) {
        let rel = self.conjuncts[dead.index()].rel;
        let syms = std::mem::take(&mut self.index.sym_rows[dead.index()]);
        self.index.cols.remove_row(rel, dead.0, &syms);
        for &s in &syms {
            self.index.occ_remove(s, dead.0);
        }
        self.index.sym_rows[dead.index()] = syms;
        let list = &mut self.index.rel_rows[rel.index()];
        if let Ok(pos) = list.binary_search(&dead.0) {
            list.remove(pos);
        }
        let c = &mut self.conjuncts[dead.index()];
        c.alive = false;
        c.merged_into = Some(survivor);
        let lvl = c.level;
        let s = &mut self.conjuncts[survivor.index()];
        s.level = s.level.min(lvl);
    }

    /// Marks the chase failed (FD constant clash): deletes every conjunct
    /// and clears the live indexes.
    pub(crate) fn fail(&mut self) {
        self.failed = true;
        for c in &mut self.conjuncts {
            c.alive = false;
        }
        self.index.cols = ColumnIndex::new(self.catalog.rel_ids().map(|r| self.catalog.arity(r)));
        self.index.dedup = DedupIndex::new();
        for list in &mut self.index.rel_rows {
            list.clear();
        }
        for list in &mut self.index.var_occ {
            list.clear();
        }
    }

    /// Substitutes the variable `from ↦ to` through every live conjunct
    /// and the summary row, merging conjuncts that become identical
    /// (earliest id survives, donating the minimum level). This is the
    /// FD chase rule's mutation primitive; the occurrence index makes it
    /// proportional to the rows actually containing `from`, not the
    /// whole chase.
    pub(crate) fn substitute(&mut self, from: CVar, to: &CTerm) -> Vec<Merge> {
        let from_sym = ChaseIndex::var_sym(from);
        let to_sym = self.index.term_sym(to);
        debug_assert_ne!(from_sym, to_sym);
        let rows = self
            .index
            .var_occ
            .get_mut(from.index())
            .map(std::mem::take)
            .unwrap_or_default();
        let mut merges = Vec::new();
        for row in rows {
            let id = ConjId(row);
            debug_assert!(self.conjuncts[id.index()].alive);
            let rel = self.conjuncts[id.index()].rel;
            // Un-register the old row shape.
            let old_syms = self.index.sym_rows[id.index()].clone();
            self.index.dedup.remove(rel, &old_syms, row);
            // Rewrite terms + syms + postings in the affected columns.
            for (col, sym) in old_syms.iter().enumerate() {
                if *sym == from_sym {
                    self.index
                        .cols
                        .replace_in_col(rel, col, row, from_sym, to_sym);
                    self.index.sym_rows[id.index()][col] = to_sym;
                    self.conjuncts[id.index()].terms[col] = to.clone();
                }
            }
            self.index.occ_insert(to_sym, row);
            let new_syms = self.index.sym_rows[id.index()].clone();
            // Re-register, merging on collision (min id survives).
            if let Some(other) = self.index.dedup.try_insert(rel, &new_syms, row) {
                let (survivor, dead) = if other < row {
                    (ConjId(other), id)
                } else {
                    (id, ConjId(other))
                };
                if survivor.0 == row {
                    // `try_insert` left the old holder in place; the
                    // rewritten row outranks it.
                    self.index.dedup.insert(rel, &new_syms, row);
                }
                self.kill_conjunct(dead, survivor);
                merges.push(Merge { dead, survivor });
            }
        }
        // `from` no longer occurs anywhere; its occurrence list stays
        // empty. Rewrite the summary row.
        for t in self.summary.iter_mut() {
            if matches!(t, CTerm::Var(v) if *v == from) {
                *t = to.clone();
            }
        }
        merges
    }

    /// Finds a live conjunct witnessing `ind` for `parent`: a `c″` over
    /// the IND's right-hand relation with `c″[Y] = parent[X]`. Pure
    /// index intersection; the smallest conjunct id wins (the canonical
    /// witness, matching creation order).
    pub(crate) fn find_witness(&self, ind: &Ind, parent: ConjId) -> Option<ConjId> {
        let parent_syms = &self.index.sym_rows[parent.index()];
        let bound: Vec<(usize, Sym)> = ind
            .rhs_cols
            .iter()
            .zip(ind.lhs_cols.iter())
            .map(|(&y, &x)| (y, parent_syms[x]))
            .collect();
        if bound.is_empty() {
            // Width-0 IND (degenerate but constructible): any live row
            // of the right-hand relation witnesses it.
            return self.index.rel_rows[ind.rhs_rel.index()]
                .first()
                .map(|&id| ConjId(id));
        }
        self.index
            .cols
            .first_candidate(
                ind.rhs_rel,
                &bound,
                |row| &self.index.sym_rows[row as usize],
                |_| true,
            )
            .map(ConjId)
    }

    /// Finds the canonical applicable FD: the lexicographically first
    /// pair of live conjuncts (by id) agreeing on some FD's left-hand
    /// side and differing on its right-hand side, and the first such FD
    /// in Σ order for that pair. When `involving` is set, only pairs
    /// containing that conjunct are examined (valid when the state was
    /// FD-quiescent before that conjunct appeared).
    ///
    /// Uses hash grouping / posting intersection — linear in the rows of
    /// the FDs' relations instead of quadratic in the chase.
    pub(crate) fn find_applicable_fd(
        &self,
        fds: &[cqchase_ir::Fd],
        involving: Option<ConjId>,
    ) -> Option<(ConjId, ConjId, usize)> {
        match involving {
            Some(c) => {
                if !self.conjuncts[c.index()].alive {
                    return None;
                }
                let rel = self.conjuncts[c.index()].rel;
                let c_syms = &self.index.sym_rows[c.index()];
                // Original schedule: iterate other conjuncts in id order,
                // and per other take the first applicable FD — i.e.
                // minimize (other, fd_idx).
                let mut best: Option<(u32, usize)> = None;
                for (fd_idx, fd) in fds.iter().enumerate() {
                    if fd.relation != rel {
                        continue;
                    }
                    // Candidates are visited in ascending id order, so
                    // the first accepted row is this fd's minimal
                    // applicable partner for `c`.
                    let accept = |other: u32| {
                        other != c.0
                            && self.index.sym_rows[other as usize][fd.rhs] != c_syms[fd.rhs]
                    };
                    let bound: Vec<(usize, Sym)> = fd.lhs.iter().map(|&z| (z, c_syms[z])).collect();
                    let first = if bound.is_empty() {
                        self.index.rel_rows[rel.index()]
                            .iter()
                            .copied()
                            .find(|&r| accept(r))
                    } else {
                        self.index.cols.first_candidate(
                            rel,
                            &bound,
                            |row| &self.index.sym_rows[row as usize],
                            accept,
                        )
                    };
                    if let Some(other) = first {
                        let better = match best {
                            None => true,
                            Some((o, f)) => other < o || (other == o && fd_idx < f),
                        };
                        if better {
                            best = Some((other, fd_idx));
                        }
                    }
                }
                best.map(|(other, fd_idx)| {
                    let other = ConjId(other);
                    let (c1, c2) = if other < c { (other, c) } else { (c, other) };
                    (c1, c2, fd_idx)
                })
            }
            None => {
                // Minimize the pair (c1, c2) over all FDs; for the
                // winning pair take the smallest applicable fd index —
                // exactly the pair-major schedule of the naive scan.
                let mut best: Option<(u32, u32, usize)> = None;
                for (fd_idx, fd) in fds.iter().enumerate() {
                    let mut groups: FxHashMap<Vec<Sym>, (u32, Sym)> = FxHashMap::default();
                    for &row in &self.index.rel_rows[fd.relation.index()] {
                        let syms = &self.index.sym_rows[row as usize];
                        let key: Vec<Sym> = fd.lhs.iter().map(|&z| syms[z]).collect();
                        let rhs = syms[fd.rhs];
                        match groups.get(&key) {
                            None => {
                                groups.insert(key, (row, rhs));
                            }
                            Some(&(first, first_rhs)) => {
                                if rhs != first_rhs {
                                    // Rows are visited in ascending id
                                    // order, so (first, row) is this
                                    // group's minimal applicable pair.
                                    let better = match best {
                                        None => true,
                                        Some((b1, b2, bf)) => (first, row, fd_idx) < (b1, b2, bf),
                                    };
                                    if better {
                                        best = Some((first, row, fd_idx));
                                    }
                                    // Later rows in this group can only
                                    // form larger pairs; but keep the
                                    // first entry so other rows still
                                    // compare against the group minimum.
                                }
                            }
                        }
                    }
                }
                best.map(|(c1, c2, fd_idx)| (ConjId(c1), ConjId(c2), fd_idx))
            }
        }
    }

    /// A [`FactSource`] view of the live conjuncts with level ≤
    /// `max_level`, for homomorphism search straight off the chase's
    /// incremental indexes.
    pub fn hom_source(&self, max_level: u32) -> ChaseHomSource<'_> {
        ChaseHomSource {
            state: self,
            max_level,
        }
    }

    /// Renders a conjunct as `R(a, b, n3_c0i1a2L1)`.
    pub fn render_conjunct(&self, id: ConjId) -> String {
        let c = &self.conjuncts[id.index()];
        let mut s = format!("{}(", self.catalog.name(c.rel));
        for (i, t) in c.terms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match t {
                CTerm::Const(k) => s.push_str(&k.to_string()),
                CTerm::Var(v) => s.push_str(&self.vars[v.index()].name),
            }
        }
        s.push(')');
        s
    }
}

/// A level-truncated [`FactSource`] view of a [`ChaseState`]. Row ids
/// are conjunct ids.
#[derive(Debug, Clone, Copy)]
pub struct ChaseHomSource<'a> {
    state: &'a ChaseState,
    max_level: u32,
}

impl ChaseHomSource<'_> {
    #[inline]
    fn level_ok(&self, row: u32) -> bool {
        self.state.conjuncts[row as usize].level <= self.max_level
    }

    /// The summary row as target symbols.
    pub fn summary_tsyms(&self) -> Vec<TSym> {
        self.state
            .summary
            .iter()
            .map(|t| match t {
                CTerm::Const(c) => TSym::Const(c.clone()),
                CTerm::Var(v) => TSym::Node(u64::from(v.0)),
            })
            .collect()
    }

    /// Resolves a target symbol into the chase's interned space.
    pub fn sym_of_tsym(&self, s: &TSym) -> Option<Sym> {
        match s {
            TSym::Const(c) => self.state.index.consts.get(c).map(|s| Sym(s.0 << 1)),
            TSym::Node(n) => Some(ChaseIndex::var_sym(CVar(*n as u32))),
        }
    }

    /// The target symbol behind an interned chase symbol.
    pub fn tsym_of(&self, sym: Sym) -> TSym {
        match ChaseIndex::sym_var(sym) {
            Some(v) => TSym::Node(u64::from(v.0)),
            None => TSym::Const(self.state.index.consts.resolve(Sym(sym.0 >> 1)).clone()),
        }
    }
}

impl FactSource for ChaseHomSource<'_> {
    fn rel_size(&self, rel: RelId) -> usize {
        // Upper bound (level filtering not applied) — ordering heuristic.
        self.state.index.rel_rows[rel.index()].len()
    }

    fn row_syms(&self, _rel: RelId, row: u32) -> &[Sym] {
        &self.state.index.sym_rows[row as usize]
    }

    fn posting_len(&self, rel: RelId, col: usize, sym: Sym) -> usize {
        self.state.index.cols.posting_len(rel, col, sym)
    }

    fn candidates(&self, rel: RelId, bound: &[(usize, Sym)], out: &mut Vec<u32>) {
        if bound.is_empty() {
            out.extend(
                self.state.index.rel_rows[rel.index()]
                    .iter()
                    .copied()
                    .filter(|&r| self.level_ok(r)),
            );
        } else {
            let start = out.len();
            self.state.index.cols.candidates(
                rel,
                bound,
                |row| &self.state.index.sym_rows[row as usize],
                out,
            );
            let mut keep = start;
            for i in start..out.len() {
                if self.level_ok(out[i]) {
                    out.swap(keep, i);
                    keep += 1;
                }
            }
            out.truncate(keep);
        }
    }

    fn sym_of_const(&self, c: &Constant) -> Option<Sym> {
        self.state.index.consts.get(c).map(|s| Sym(s.0 << 1))
    }

    fn distinct_count(&self, rel: RelId, col: usize) -> usize {
        // Upper bound (level filtering not applied) — cost heuristic.
        self.state.index.cols.distinct_count(rel, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::{parse_program, Program};

    fn prog() -> Program {
        parse_program("relation R(a, b, c). Q(z) :- R(x, y, z), R(z, y, x).").unwrap()
    }

    #[test]
    fn dvs_precede_ndvs_in_symbol_order() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        // Query variable order is x, y (NDVs interned first in the body)
        // …actually z is the head DV and interned first. Regardless of
        // interning order, the chase order must put the DV `z` first.
        assert_eq!(st.vars[0].name, "z");
        assert!(matches!(
            st.vars[0].origin,
            CVarOrigin::Query {
                kind: VarKind::Distinguished,
                ..
            }
        ));
        for info in &st.vars[1..] {
            assert!(matches!(
                info.origin,
                CVarOrigin::Query {
                    kind: VarKind::Existential,
                    ..
                }
            ));
        }
    }

    #[test]
    fn conjuncts_start_at_level_zero() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        assert_eq!(st.num_alive(), 2);
        assert!(st.alive_conjuncts().all(|(_, c)| c.level == 0));
        assert_eq!(st.max_level(), Some(0));
        assert_eq!(st.level_histogram(), vec![2]);
    }

    #[test]
    fn shared_variables_share_symbols() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let c0 = &st.conjuncts[0];
        let c1 = &st.conjuncts[1];
        // Q(z) :- R(x, y, z), R(z, y, x): position 2 of c0 == position 0 of c1.
        assert_eq!(c0.terms[2], c1.terms[0]);
        assert_eq!(c0.terms[1], c1.terms[1]);
        assert_eq!(st.summary(), &[c0.terms[2].clone()]);
    }

    #[test]
    fn fresh_vars_extend_the_order() {
        let p = prog();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let before = st.num_vars();
        let v = st.fresh_var(1, ConjId(0), 0, 1);
        assert_eq!(v.index(), before);
        assert!(matches!(
            st.var_info(v).origin,
            CVarOrigin::Created {
                attr: 1,
                level: 1,
                ..
            }
        ));
        // Encoded name mentions provenance.
        assert!(st.var_info(v).name.contains("c0"));
    }

    #[test]
    fn render() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let s = st.render_conjunct(ConjId(0));
        assert!(s.starts_with("R("), "{s}");
        assert!(s.contains('z'), "{s}");
    }

    #[test]
    fn substitute_merges_duplicates_and_rewrites_summary() {
        // Q(z) :- R(x, y, z), R(z, y, x): substituting x ↦ z makes the
        // two conjuncts identical; the earlier one survives.
        let p = prog();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let x = st.alive_conjuncts().next().unwrap().1.terms[0]
            .as_var()
            .unwrap();
        let z = st.summary()[0].clone();
        let merges = st.substitute(x, &z);
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].survivor, ConjId(0));
        assert_eq!(merges[0].dead, ConjId(1));
        assert_eq!(st.num_alive(), 1);
        assert_eq!(st.resolve_conjunct(ConjId(1)), ConjId(0));
        // The live conjunct's first and third columns now both hold z.
        let (_, c) = st.alive_conjuncts().next().unwrap();
        assert_eq!(c.terms[0], z);
        assert_eq!(c.terms[2], z);
    }

    #[test]
    fn width_zero_ind_witnessed_by_any_row() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let r = p.catalog.resolve("R").unwrap();
        let ind = cqchase_ir::Ind::new(r, vec![], r, vec![]);
        // Degenerate width-0 IND: every nonempty relation witnesses it.
        assert_eq!(st.find_witness(&ind, ConjId(0)), Some(ConjId(0)));
    }

    #[test]
    fn find_witness_uses_postings() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let ind = p.deps.inds().next().unwrap();
        // R(x, y) projected on [2] is (y); R(y, z) has y in column 1.
        assert_eq!(st.find_witness(ind, ConjId(0)), Some(ConjId(1)));
        // R(y, z) projected on [2] is (z); nothing has z in column 1.
        assert_eq!(st.find_witness(ind, ConjId(1)), None);
    }
}
