//! Chase state: symbols with a total lexicographic order, conjuncts with
//! levels, the summary row, and the arc structure of the chase graph.

use std::collections::HashMap;

use cqchase_ir::{Catalog, ConjunctiveQuery, Constant, RelId, Term, VarId, VarKind};

/// A chase symbol (variable) identified by its **ordinal**: the position
/// in the chase's symbol table.
///
/// The ordinal *is* the paper's lexicographic order: distinguished
/// variables of the original query come first, then its nondistinguished
/// variables, then every chase-created NDV in creation order ("this
/// symbol following all previously introduced symbols in the
/// lexicographic order used by the FD chase rule").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CVar(pub u32);

impl CVar {
    /// The ordinal as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term inside the chase: a constant or a chase symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CTerm {
    /// A constant (fixed by every homomorphism).
    Const(Constant),
    /// A chase variable.
    Var(CVar),
}

impl CTerm {
    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<CVar> {
        match self {
            CTerm::Var(v) => Some(*v),
            CTerm::Const(_) => None,
        }
    }

    /// Whether this is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, CTerm::Const(_))
    }
}

/// Where a chase symbol came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CVarOrigin {
    /// A variable of the original query.
    Query {
        /// Its id in the query's variable table.
        var: VarId,
        /// DV or NDV.
        kind: VarKind,
    },
    /// An NDV created by an IND chase-rule application. The fields encode
    /// the paper's naming scheme: "a name that encodes A, c, the IND, and
    /// the level of c′".
    Created {
        /// Column (attribute position) the symbol was created in.
        attr: usize,
        /// The conjunct the IND was applied to.
        parent: ConjId,
        /// Index of the IND in Σ's declaration order.
        ind_idx: usize,
        /// Level of the *created* conjunct.
        level: u32,
    },
}

/// Metadata for one chase symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CVarInfo {
    /// Provenance.
    pub origin: CVarOrigin,
    /// Display name (query variables keep their names; created NDVs get
    /// encoded names).
    pub name: String,
}

/// Identifier of a conjunct within the chase, assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConjId(pub u32);

impl ConjId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One conjunct (tuple) of the chase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conjunct {
    /// The relation this conjunct belongs to.
    pub rel: RelId,
    /// One term per column.
    pub terms: Vec<CTerm>,
    /// The paper's *level*: 0 for original conjuncts, parent's level + 1
    /// for IND-created ones, minimum on FD merges.
    pub level: u32,
    /// `false` once this conjunct has been merged into another by the FD
    /// rule (the survivor keeps `true`).
    pub alive: bool,
    /// When dead: who absorbed it.
    pub merged_into: Option<ConjId>,
}

/// Arc kinds of the chase graph (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcKind {
    /// The IND application created the target conjunct.
    Ordinary,
    /// (R-chase) the required conjunct already existed; points at it.
    Cross,
}

/// One labelled arc of the chase graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseArc {
    /// Source conjunct (the one the IND was applied to).
    pub from: ConjId,
    /// Target conjunct (created, or pre-existing for cross arcs).
    pub to: ConjId,
    /// Index of the IND in Σ's declaration order (the arc label).
    pub ind_idx: usize,
    /// Ordinary or cross.
    pub kind: ArcKind,
}

/// The complete (partial) chase: symbols, conjuncts, summary row, arcs.
#[derive(Debug, Clone)]
pub struct ChaseState {
    pub(crate) catalog: Catalog,
    pub(crate) vars: Vec<CVarInfo>,
    pub(crate) conjuncts: Vec<Conjunct>,
    pub(crate) summary: Vec<CTerm>,
    pub(crate) arcs: Vec<ChaseArc>,
    /// Set when the FD rule met two distinct constants: the chase is the
    /// empty query ("this query cannot be chased to an equivalent query
    /// obeying the given FD").
    pub(crate) failed: bool,
}

impl ChaseState {
    /// Initializes the state from a query: its conjuncts at level 0, its
    /// variables with DVs preceding NDVs in the symbol order.
    pub(crate) fn from_query(q: &ConjunctiveQuery, catalog: &Catalog) -> ChaseState {
        // Map query VarIds to chase ordinals: DVs first (in VarId order),
        // then NDVs (in VarId order).
        let mut order: Vec<VarId> = q.vars.iter().map(|(v, _)| v).collect();
        order.sort_by_key(|&v| (q.vars.kind(v) != VarKind::Distinguished, v));
        let mut to_cvar: HashMap<VarId, CVar> = HashMap::new();
        let mut vars = Vec::with_capacity(order.len());
        for v in order {
            let cv = CVar(vars.len() as u32);
            to_cvar.insert(v, cv);
            vars.push(CVarInfo {
                origin: CVarOrigin::Query {
                    var: v,
                    kind: q.vars.kind(v),
                },
                name: q.vars.name(v).to_owned(),
            });
        }
        let conv = |t: &Term| match t {
            Term::Const(c) => CTerm::Const(c.clone()),
            Term::Var(v) => CTerm::Var(to_cvar[v]),
        };
        // The paper's C_Q is a set of *distinct* conjuncts — collapse
        // syntactic duplicates (keeping first-occurrence order).
        let mut seen: std::collections::HashSet<(RelId, Vec<CTerm>)> = std::collections::HashSet::new();
        let mut conjuncts = Vec::with_capacity(q.atoms.len());
        for a in &q.atoms {
            let terms: Vec<CTerm> = a.terms.iter().map(conv).collect();
            if seen.insert((a.relation, terms.clone())) {
                conjuncts.push(Conjunct {
                    rel: a.relation,
                    terms,
                    level: 0,
                    alive: true,
                    merged_into: None,
                });
            }
        }
        let summary = q.head.iter().map(conv).collect();
        ChaseState {
            catalog: catalog.clone(),
            vars,
            conjuncts,
            summary,
            arcs: Vec::new(),
            failed: false,
        }
    }

    /// The catalog the chase runs against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Whether the FD rule failed on a constant clash (empty chase).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// The summary row (rewritten by FD merges as the chase proceeds).
    pub fn summary(&self) -> &[CTerm] {
        &self.summary
    }

    /// All conjunct slots, dead ones included (use
    /// [`ChaseState::alive_conjuncts`] for the live view).
    pub fn all_conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// The conjunct at `id`.
    pub fn conjunct(&self, id: ConjId) -> &Conjunct {
        &self.conjuncts[id.index()]
    }

    /// Live conjuncts with their ids, in creation order.
    pub fn alive_conjuncts(&self) -> impl Iterator<Item = (ConjId, &Conjunct)> {
        self.conjuncts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, c)| (ConjId(i as u32), c))
    }

    /// Number of live conjuncts.
    pub fn num_alive(&self) -> usize {
        self.conjuncts.iter().filter(|c| c.alive).count()
    }

    /// All arcs recorded so far.
    pub fn arcs(&self) -> &[ChaseArc] {
        &self.arcs
    }

    /// Symbol metadata by ordinal.
    pub fn var_info(&self, v: CVar) -> &CVarInfo {
        &self.vars[v.index()]
    }

    /// Number of symbols ever created.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Follows merge links to the live representative of `id`.
    pub fn resolve_conjunct(&self, mut id: ConjId) -> ConjId {
        while let Some(next) = self.conjuncts[id.index()].merged_into {
            id = next;
        }
        id
    }

    /// The maximum level among live conjuncts (`None` when the chase is
    /// empty, e.g. after failure).
    pub fn max_level(&self) -> Option<u32> {
        self.conjuncts
            .iter()
            .filter(|c| c.alive)
            .map(|c| c.level)
            .max()
    }

    /// Live conjunct count per level (index = level).
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut h = Vec::new();
        for c in self.conjuncts.iter().filter(|c| c.alive) {
            let l = c.level as usize;
            if h.len() <= l {
                h.resize(l + 1, 0);
            }
            h[l] += 1;
        }
        h
    }

    /// Creates a fresh NDV with the paper's provenance encoding; its name
    /// lexicographically follows all earlier symbols by construction
    /// (ordinal order *is* the order).
    pub(crate) fn fresh_var(
        &mut self,
        attr: usize,
        parent: ConjId,
        ind_idx: usize,
        level: u32,
    ) -> CVar {
        let cv = CVar(self.vars.len() as u32);
        let name = format!("n{}_c{}i{}a{}L{}", cv.0, parent.0, ind_idx, attr, level);
        self.vars.push(CVarInfo {
            origin: CVarOrigin::Created {
                attr,
                parent,
                ind_idx,
                level,
            },
            name,
        });
        cv
    }

    /// Renders a conjunct as `R(a, b, n3_c0i1a2L1)`.
    pub fn render_conjunct(&self, id: ConjId) -> String {
        let c = &self.conjuncts[id.index()];
        let mut s = format!("{}(", self.catalog.name(c.rel));
        for (i, t) in c.terms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match t {
                CTerm::Const(k) => s.push_str(&k.to_string()),
                CTerm::Var(v) => s.push_str(&self.vars[v.index()].name),
            }
        }
        s.push(')');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::{parse_program, Program};

    fn prog() -> Program {
        parse_program(
            "relation R(a, b, c). Q(z) :- R(x, y, z), R(z, y, x).",
        )
        .unwrap()
    }

    #[test]
    fn dvs_precede_ndvs_in_symbol_order() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        // Query variable order is x, y (NDVs interned first in the body)
        // …actually z is the head DV and interned first. Regardless of
        // interning order, the chase order must put the DV `z` first.
        assert_eq!(st.vars[0].name, "z");
        assert!(matches!(
            st.vars[0].origin,
            CVarOrigin::Query {
                kind: VarKind::Distinguished,
                ..
            }
        ));
        for info in &st.vars[1..] {
            assert!(matches!(
                info.origin,
                CVarOrigin::Query {
                    kind: VarKind::Existential,
                    ..
                }
            ));
        }
    }

    #[test]
    fn conjuncts_start_at_level_zero() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        assert_eq!(st.num_alive(), 2);
        assert!(st.alive_conjuncts().all(|(_, c)| c.level == 0));
        assert_eq!(st.max_level(), Some(0));
        assert_eq!(st.level_histogram(), vec![2]);
    }

    #[test]
    fn shared_variables_share_symbols() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let c0 = &st.conjuncts[0];
        let c1 = &st.conjuncts[1];
        // Q(z) :- R(x, y, z), R(z, y, x): position 2 of c0 == position 0 of c1.
        assert_eq!(c0.terms[2], c1.terms[0]);
        assert_eq!(c0.terms[1], c1.terms[1]);
        assert_eq!(st.summary(), &[c0.terms[2].clone()]);
    }

    #[test]
    fn fresh_vars_extend_the_order() {
        let p = prog();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let before = st.num_vars();
        let v = st.fresh_var(1, ConjId(0), 0, 1);
        assert_eq!(v.index(), before);
        assert!(matches!(
            st.var_info(v).origin,
            CVarOrigin::Created { attr: 1, level: 1, .. }
        ));
        // Encoded name mentions provenance.
        assert!(st.var_info(v).name.contains("c0"));
    }

    #[test]
    fn render() {
        let p = prog();
        let st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let s = st.render_conjunct(ConjId(0));
        assert!(s.starts_with("R("), "{s}");
        assert!(s.contains('z'), "{s}");
    }
}
