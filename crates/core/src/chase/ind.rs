//! The IND chase rule and the witness index used for *required* checks.
//!
//! > *IND CHASE RULE. Let the IND `R[X] ⊆ S[Y]` and conjunct `c` be as
//! > above. Add a new conjunct `c′` to Q, where `R(c′) = S`,
//! > `c′[Y] = c[X]` and where `c′[A]` is a distinct new NDV symbol for
//! > each attribute `A` not in `Y`, this symbol following all previously
//! > introduced symbols in the lexicographic order.*

use std::collections::HashMap;

use cqchase_ir::Ind;

use super::state::{ArcKind, CTerm, ChaseArc, ChaseState, ConjId, Conjunct};

/// Projects conjunct terms on a column list.
pub(crate) fn project(terms: &[CTerm], cols: &[usize]) -> Vec<CTerm> {
    cols.iter().map(|&c| terms[c].clone()).collect()
}

/// Applies the IND rule: creates the new conjunct at `level(c) + 1` with
/// fresh NDVs outside `Y`, records the ordinary arc, and returns the new
/// conjunct's id.
pub(crate) fn apply_ind(
    state: &mut ChaseState,
    parent: ConjId,
    ind: &Ind,
    ind_idx: usize,
) -> ConjId {
    let parent_terms = state.conjunct(parent).terms.clone();
    let level = state.conjunct(parent).level + 1;
    let arity = state.catalog().arity(ind.rhs_rel);
    let child = ConjId(state.conjuncts.len() as u32);
    let mut terms = Vec::with_capacity(arity);
    for col in 0..arity {
        match ind.rhs_cols.iter().position(|&y| y == col) {
            Some(k) => terms.push(parent_terms[ind.lhs_cols[k]].clone()),
            None => {
                let v = state.fresh_var(col, parent, ind_idx, level);
                terms.push(CTerm::Var(v));
            }
        }
    }
    state.conjuncts.push(Conjunct {
        rel: ind.rhs_rel,
        terms,
        level,
        alive: true,
        merged_into: None,
    });
    state.arcs.push(ChaseArc {
        from: parent,
        to: child,
        ind_idx,
        kind: ArcKind::Ordinary,
    });
    child
}

/// Records a cross arc `parent → witness` labelled by `ind_idx` (R-chase
/// bookkeeping when the required conjunct already exists).
pub(crate) fn record_cross(state: &mut ChaseState, parent: ConjId, witness: ConjId, ind_idx: usize) {
    state.arcs.push(ChaseArc {
        from: parent,
        to: witness,
        ind_idx,
        kind: ArcKind::Cross,
    });
}

/// Per-IND index of the existing witnesses: for IND *i* with right-hand
/// side `S[Y]`, maps the `Y`-projection of every conjunct over `S` to one
/// such conjunct. Used for the R-chase's "is this application required?"
/// test and for O-chase exact-duplicate avoidance.
///
/// FD substitutions rewrite terms in place and would silently invalidate
/// the keys, so the driver marks the index dirty after any FD application
/// and it rebuilds lazily.
#[derive(Debug, Default)]
pub(crate) struct WitnessIndex {
    /// One map per IND (index-aligned with Σ's IND list).
    maps: Vec<HashMap<Vec<CTerm>, ConjId>>,
    dirty: bool,
}

impl WitnessIndex {
    pub(crate) fn new(num_inds: usize) -> Self {
        WitnessIndex {
            maps: vec![HashMap::new(); num_inds],
            dirty: true,
        }
    }

    pub(crate) fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    fn rebuild(&mut self, state: &ChaseState, inds: &[Ind]) {
        for m in &mut self.maps {
            m.clear();
        }
        for (id, c) in state.alive_conjuncts() {
            for (i, ind) in inds.iter().enumerate() {
                if ind.rhs_rel == c.rel {
                    self.maps[i]
                        .entry(project(&c.terms, &ind.rhs_cols))
                        .or_insert(id);
                }
            }
        }
        self.dirty = false;
    }

    /// Registers a newly created conjunct (no-op while dirty — the next
    /// rebuild will pick it up).
    pub(crate) fn register(&mut self, state: &ChaseState, inds: &[Ind], id: ConjId) {
        if self.dirty {
            return;
        }
        let c = state.conjunct(id);
        for (i, ind) in inds.iter().enumerate() {
            if ind.rhs_rel == c.rel {
                self.maps[i]
                    .entry(project(&c.terms, &ind.rhs_cols))
                    .or_insert(id);
            }
        }
    }

    /// Finds a live conjunct witnessing `ind_idx` for `parent`, i.e. a
    /// `c″` over `S` with `c″[Y] = c[X]`.
    pub(crate) fn witness(
        &mut self,
        state: &ChaseState,
        inds: &[Ind],
        parent: ConjId,
        ind_idx: usize,
    ) -> Option<ConjId> {
        if self.dirty {
            self.rebuild(state, inds);
        }
        let key = project(
            &state.conjunct(parent).terms,
            &inds[ind_idx].lhs_cols,
        );
        self.maps[ind_idx]
            .get(&key)
            .map(|&id| state.resolve_conjunct(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn apply_creates_child_with_fresh_ndvs() {
        let p = parse_program(
            "relation R(a, b, c). relation S(x, y).
             ind R[1, 3] <= S[1, 2].
             Q(z) :- R(u, v, z).",
        )
        .unwrap();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let ind = p.deps.inds().next().unwrap().clone();
        let child = apply_ind(&mut st, ConjId(0), &ind, 0);
        let c = st.conjunct(child);
        assert_eq!(c.level, 1);
        assert_eq!(st.catalog().name(c.rel), "S");
        // S(x, y) receives (R.a, R.c) = (u, z).
        let parent = st.conjunct(ConjId(0));
        assert_eq!(c.terms[0], parent.terms[0]);
        assert_eq!(c.terms[1], parent.terms[2]);
        assert_eq!(st.arcs().len(), 1);
        assert_eq!(st.arcs()[0].kind, ArcKind::Ordinary);
    }

    #[test]
    fn non_covered_columns_get_fresh_vars() {
        let p = parse_program(
            "relation R(a). relation S(x, y, z).
             ind R[1] <= S[2].
             Q(u) :- R(u).",
        )
        .unwrap();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let ind = p.deps.inds().next().unwrap().clone();
        let before_vars = st.num_vars();
        let child = apply_ind(&mut st, ConjId(0), &ind, 0);
        let c = st.conjunct(child).clone();
        // Column 1 (0-based) carries u; columns 0 and 2 are fresh.
        assert_eq!(c.terms[1], st.conjunct(ConjId(0)).terms[0]);
        assert_eq!(st.num_vars(), before_vars + 2);
        let v0 = c.terms[0].as_var().unwrap();
        let v2 = c.terms[2].as_var().unwrap();
        assert_ne!(v0, v2);
        // Fresh symbols follow all earlier ones in the order.
        assert!(v0.index() >= before_vars && v2.index() >= before_vars);
    }

    #[test]
    fn witness_index_finds_existing() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let inds: Vec<Ind> = p.deps.inds().cloned().collect();
        let mut wi = WitnessIndex::new(1);
        // Conjunct 0 is R(x, y); its projection on [b] is (y), and R(y, z)
        // has (y) in column a — so the application is NOT required.
        let w = wi.witness(&st, &inds, ConjId(0), 0);
        assert_eq!(w, Some(ConjId(1)));
        // Conjunct 1 is R(y, z): projection (z) has no witness.
        let w2 = wi.witness(&st, &inds, ConjId(1), 0);
        assert_eq!(w2, None);
        // After applying, the new conjunct witnesses it.
        let child = apply_ind(&mut st, ConjId(1), &inds[0], 0);
        wi.register(&st, &inds, child);
        assert_eq!(wi.witness(&st, &inds, ConjId(1), 0), Some(child));
    }
}
