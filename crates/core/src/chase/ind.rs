//! The IND chase rule.
//!
//! > *IND CHASE RULE. Let the IND `R[X] ⊆ S[Y]` and conjunct `c` be as
//! > above. Add a new conjunct `c′` to Q, where `R(c′) = S`,
//! > `c′[Y] = c[X]` and where `c′[A]` is a distinct new NDV symbol for
//! > each attribute `A` not in `Y`, this symbol following all previously
//! > introduced symbols in the lexicographic order.*
//!
//! The *required* check ("does a witnessing conjunct already exist?") is
//! [`ChaseState::find_witness`] — a posting-list intersection on the
//! chase's incremental indexes, replacing the seed's per-IND hash maps
//! that had to be rebuilt from the full conjunct set after every FD
//! merge.

use cqchase_ir::Ind;

use super::state::{ArcKind, CTerm, ChaseArc, ChaseState, ConjId};

/// Applies the IND rule: creates the new conjunct at `level(c) + 1` with
/// fresh NDVs outside `Y`, records the ordinary arc, and returns the new
/// conjunct's id.
pub(crate) fn apply_ind(
    state: &mut ChaseState,
    parent: ConjId,
    ind: &Ind,
    ind_idx: usize,
) -> ConjId {
    let parent_terms = state.conjunct(parent).terms.clone();
    let level = state.conjunct(parent).level + 1;
    let arity = state.catalog().arity(ind.rhs_rel);
    let mut terms = Vec::with_capacity(arity);
    for col in 0..arity {
        match ind.rhs_cols.iter().position(|&y| y == col) {
            Some(k) => terms.push(parent_terms[ind.lhs_cols[k]].clone()),
            None => {
                let v = state.fresh_var(col, parent, ind_idx, level);
                terms.push(CTerm::Var(v));
            }
        }
    }
    let child = state.push_conjunct(ind.rhs_rel, terms, level);
    state.arcs.push(ChaseArc {
        from: parent,
        to: child,
        ind_idx,
        kind: ArcKind::Ordinary,
    });
    child
}

/// Records a cross arc `parent → witness` labelled by `ind_idx` (R-chase
/// bookkeeping when the required conjunct already exists).
pub(crate) fn record_cross(
    state: &mut ChaseState,
    parent: ConjId,
    witness: ConjId,
    ind_idx: usize,
) {
    state.arcs.push(ChaseArc {
        from: parent,
        to: witness,
        ind_idx,
        kind: ArcKind::Cross,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn apply_creates_child_with_fresh_ndvs() {
        let p = parse_program(
            "relation R(a, b, c). relation S(x, y).
             ind R[1, 3] <= S[1, 2].
             Q(z) :- R(u, v, z).",
        )
        .unwrap();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let ind = p.deps.inds().next().unwrap().clone();
        let child = apply_ind(&mut st, ConjId(0), &ind, 0);
        let c = st.conjunct(child);
        assert_eq!(c.level, 1);
        assert_eq!(st.catalog().name(c.rel), "S");
        // S(x, y) receives (R.a, R.c) = (u, z).
        let parent = st.conjunct(ConjId(0));
        assert_eq!(c.terms[0], parent.terms[0]);
        assert_eq!(c.terms[1], parent.terms[2]);
        assert_eq!(st.arcs().len(), 1);
        assert_eq!(st.arcs()[0].kind, ArcKind::Ordinary);
    }

    #[test]
    fn non_covered_columns_get_fresh_vars() {
        let p = parse_program(
            "relation R(a). relation S(x, y, z).
             ind R[1] <= S[2].
             Q(u) :- R(u).",
        )
        .unwrap();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let ind = p.deps.inds().next().unwrap().clone();
        let before_vars = st.num_vars();
        let child = apply_ind(&mut st, ConjId(0), &ind, 0);
        let c = st.conjunct(child).clone();
        // Column 1 (0-based) carries u; columns 0 and 2 are fresh.
        assert_eq!(c.terms[1], st.conjunct(ConjId(0)).terms[0]);
        assert_eq!(st.num_vars(), before_vars + 2);
        let v0 = c.terms[0].as_var().unwrap();
        let v2 = c.terms[2].as_var().unwrap();
        assert_ne!(v0, v2);
        // Fresh symbols follow all earlier ones in the order.
        assert!(v0.index() >= before_vars && v2.index() >= before_vars);
    }

    #[test]
    fn witness_lookup_finds_existing_and_new() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let mut st = ChaseState::from_query(&p.queries[0], &p.catalog);
        let inds: Vec<Ind> = p.deps.inds().cloned().collect();
        // Conjunct 0 is R(x, y); its projection on [b] is (y), and R(y, z)
        // has (y) in column a — so the application is NOT required.
        assert_eq!(st.find_witness(&inds[0], ConjId(0)), Some(ConjId(1)));
        // Conjunct 1 is R(y, z): projection (z) has no witness.
        assert_eq!(st.find_witness(&inds[0], ConjId(1)), None);
        // After applying, the new conjunct witnesses it — no rebuild, the
        // incremental index picked it up on insertion.
        let child = apply_ind(&mut st, ConjId(1), &inds[0], 0);
        assert_eq!(st.find_witness(&inds[0], ConjId(1)), Some(child));
    }
}
