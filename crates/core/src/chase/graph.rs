//! Rendering the chase as the paper's Figure 1 graph: a vertex per
//! conjunct, ordinary arcs for IND-created conjuncts, cross arcs for
//! R-chase redundancies, levels as rows.

use std::fmt::Write as _;

use super::state::{ArcKind, ChaseState, ConjId};

/// A textual, per-level view of a (partial) chase — the shape of the
/// paper's Figure 1.
pub fn render_levels(state: &ChaseState) -> String {
    let mut out = String::new();
    if state.is_failed() {
        out.push_str("<failed: empty chase>\n");
        return out;
    }
    let max = state.max_level().unwrap_or(0);
    for level in 0..=max {
        let _ = writeln!(out, "level {level}:");
        for (id, _c) in state.alive_conjuncts().filter(|(_, c)| c.level == level) {
            let _ = write!(out, "  [{}] {}", id.0, state.render_conjunct(id));
            // Incoming ordinary arc (at most one) tells the provenance.
            if let Some(arc) = state
                .arcs()
                .iter()
                .find(|a| state.resolve_conjunct(a.to) == id && a.kind == ArcKind::Ordinary)
            {
                let _ = write!(out, "   <- [{}] via IND#{}", arc.from.0, arc.ind_idx);
            }
            out.push('\n');
        }
    }
    let crosses: Vec<_> = state
        .arcs()
        .iter()
        .filter(|a| a.kind == ArcKind::Cross)
        .collect();
    if !crosses.is_empty() {
        out.push_str("cross arcs:\n");
        for a in crosses {
            let _ = writeln!(
                out,
                "  [{}] -> [{}] via IND#{}",
                a.from.0,
                state.resolve_conjunct(a.to).0,
                a.ind_idx
            );
        }
    }
    out
}

/// GraphViz DOT output of the chase graph (ordinary arcs solid, cross
/// arcs dashed), one rank per level.
pub fn render_dot(state: &ChaseState, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontname=monospace];");
    let max = state.max_level().unwrap_or(0);
    for level in 0..=max {
        let ids: Vec<ConjId> = state
            .alive_conjuncts()
            .filter(|(_, c)| c.level == level)
            .map(|(id, _)| id)
            .collect();
        if ids.is_empty() {
            continue;
        }
        let _ = write!(out, "  {{ rank=same;");
        for id in &ids {
            let _ = write!(out, " c{};", id.0);
        }
        let _ = writeln!(out, " }}");
        for id in ids {
            let _ = writeln!(
                out,
                "  c{} [label=\"{}\\nL{}\"];",
                id.0,
                state.render_conjunct(id).replace('"', "\\\""),
                level
            );
        }
    }
    for a in state.arcs() {
        let to = state.resolve_conjunct(a.to);
        if !state.conjunct(to).alive || !state.conjunct(state.resolve_conjunct(a.from)).alive {
            continue;
        }
        let style = match a.kind {
            ArcKind::Ordinary => "solid",
            ArcKind::Cross => "dashed",
        };
        let _ = writeln!(
            out,
            "  c{} -> c{} [style={}, label=\"IND#{}\"];",
            state.resolve_conjunct(a.from).0,
            to.0,
            style,
            a.ind_idx
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::driver::{Chase, ChaseBudget, ChaseMode};
    use cqchase_ir::parse_program;

    fn figure1_chase(mode: ChaseMode, levels: u32) -> Chase {
        // Figure 1: Q(c) :- R(a, b, c) with
        // Σ = {R[1] ⊆ T[1], R[1,3] ⊆ S[1,2], S[1,3] ⊆ R[1,2]}.
        let p = parse_program(
            "relation R(a, b, c). relation S(x, y, z). relation T(u, v).
             ind R[1] <= T[1].
             ind R[1, 3] <= S[1, 2].
             ind S[1, 3] <= R[1, 2].
             Q(c) :- R(a, b, c).",
        )
        .unwrap();
        let mut ch = Chase::new(&p.queries[0], &p.deps, &p.catalog, mode);
        ch.expand_to_level(levels, ChaseBudget::default());
        ch
    }

    #[test]
    fn figure1_is_infinite_in_both_modes() {
        for mode in [ChaseMode::Required, ChaseMode::Oblivious] {
            let ch = figure1_chase(mode, 6);
            assert!(!ch.is_complete(), "{mode:?} chase must keep growing");
            assert_eq!(ch.state().max_level(), Some(6));
        }
    }

    #[test]
    fn figure1_level_text() {
        let ch = figure1_chase(ChaseMode::Required, 3);
        let text = render_levels(ch.state());
        assert!(text.contains("level 0:"), "{text}");
        assert!(text.contains("level 3:"), "{text}");
        assert!(text.contains("via IND#"), "{text}");
    }

    #[test]
    fn figure1_structure_level1() {
        // From R(a, b, c): IND#0 gives T(a, n), IND#1 gives S(a, c, n').
        let ch = figure1_chase(ChaseMode::Required, 1);
        let hist = ch.state().level_histogram();
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 2);
        let rels: Vec<&str> = ch
            .state()
            .alive_conjuncts()
            .filter(|(_, c)| c.level == 1)
            .map(|(_, c)| ch.state().catalog().name(c.rel))
            .collect();
        assert!(rels.contains(&"T"));
        assert!(rels.contains(&"S"));
    }

    #[test]
    fn oblivious_grows_at_least_as_fast_as_required() {
        let r = figure1_chase(ChaseMode::Required, 4);
        let o = figure1_chase(ChaseMode::Oblivious, 4);
        let rh = r.state().level_histogram();
        let oh = o.state().level_histogram();
        for (lvl, (a, b)) in rh.iter().zip(&oh).enumerate() {
            assert!(b >= a, "level {lvl}: O-chase {b} < R-chase {a}");
        }
    }

    #[test]
    fn failed_chase_renders_empty_marker() {
        let p = parse_program(
            "relation R(a, b). fd R: a -> b.
             Q(x) :- R(x, 1), R(x, 2).",
        )
        .unwrap();
        let ch = Chase::new(&p.queries[0], &p.deps, &p.catalog, ChaseMode::Required);
        assert!(ch.state().is_failed());
        assert!(render_levels(ch.state()).contains("failed"));
    }

    #[test]
    fn dot_escapes_quoted_constants() {
        let p = parse_program(r#"relation R(a). Q(x) :- R(x), R("lit")."#).unwrap();
        let ch = Chase::new(&p.queries[0], &p.deps, &p.catalog, ChaseMode::Required);
        let dot = render_dot(ch.state(), "g");
        // The string constant's quotes are escaped inside DOT labels.
        assert!(dot.contains("\\\"lit\\\""), "{dot}");
    }

    #[test]
    fn dot_output_wellformed() {
        let ch = figure1_chase(ChaseMode::Required, 2);
        let dot = render_dot(ch.state(), "fig1");
        assert!(dot.starts_with("digraph fig1 {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("rank=same"));
        assert!(dot.contains("style=solid"));
    }
}
