//! Conjunct minimization under dependencies.
//!
//! The paper reduces non-minimality to containment: a query is
//! *non-minimal* when some proper subquery (same summary row, fewer
//! conjuncts) is Σ-equivalent to it. Because dropping conjuncts can only
//! enlarge the answer (`Q ⊆∞ Q\{c}` always holds, by the identity
//! homomorphism), checking `Σ ⊨ Q\{c} ⊆∞ Q` suffices.
//!
//! [`minimize`] deletes conjuncts greedily until no single deletion
//! preserves equivalence. For Σ = ∅ this yields the Chandra–Merlin core
//! (unique up to isomorphism); under dependencies it yields a minimal
//! *subquery*, the notion the paper's Section 1 motivates (e.g. the
//! intro's `Q1` loses its `DEP` conjunct under the foreign-key IND).

use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet};

use crate::containment::{contained, ContainmentEngineError, ContainmentOptions};

/// The result of minimizing a query.
#[derive(Debug, Clone)]
pub struct MinimizeResult {
    /// The minimized query (a subquery of the input).
    pub query: ConjunctiveQuery,
    /// Indices (into the *original* atom list) of deleted conjuncts.
    pub removed: Vec<usize>,
    /// Whether every deletion decision was certified (see
    /// [`crate::containment::ContainmentAnswer::exact`]). With an inexact
    /// step the result is still a sound equivalent query, but might not
    /// be minimal.
    pub exact: bool,
}

/// Minimizes `q` under Σ by greedy conjunct deletion.
///
/// ```
/// use cqchase_core::{minimize, ContainmentOptions};
/// use cqchase_ir::parse_program;
///
/// let p = parse_program(
///     "relation EMP(eno, sal, dept).
///      relation DEP(dno, loc).
///      ind EMP[dept] <= DEP[dno].
///      Q1(e) :- EMP(e, s, d), DEP(d, l).",
/// ).unwrap();
/// let m = minimize(
///     p.query("Q1").unwrap(), &p.deps, &p.catalog,
///     &ContainmentOptions::default(),
/// ).unwrap();
/// assert_eq!(m.query.num_atoms(), 1); // the DEP join was free
/// ```
pub fn minimize(
    q: &ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
) -> Result<MinimizeResult, ContainmentEngineError> {
    let mut current = q.clone();
    // Position i of `origin` = original index of current atom i.
    let mut origin: Vec<usize> = (0..q.atoms.len()).collect();
    let mut removed = Vec::new();
    let mut exact = true;
    let mut i = 0;
    while i < current.atoms.len() {
        if current.atoms.len() == 1 {
            break; // a single-conjunct body cannot shrink (queries need a body)
        }
        let candidate = current.without_atom(i);
        let ans = contained(&candidate, &current, sigma, catalog, opts)?;
        exact &= ans.exact || ans.contained;
        if ans.contained {
            removed.push(origin[i]);
            origin.remove(i);
            current = candidate;
            // Restart from the front: removing an atom can unlock earlier
            // deletions under dependencies.
            i = 0;
        } else {
            i += 1;
        }
    }
    current.name = format!("{}_min", q.name);
    Ok(MinimizeResult {
        query: current,
        removed,
        exact,
    })
}

/// Whether `q` is minimal under Σ (no single conjunct can be deleted).
pub fn is_minimal(
    q: &ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
) -> Result<bool, ContainmentEngineError> {
    if q.atoms.len() <= 1 {
        return Ok(true);
    }
    for i in 0..q.atoms.len() {
        let candidate = q.without_atom(i);
        if contained(&candidate, q, sigma, catalog, opts)?.contained {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    fn run_minimize(src: &str, qname: &str) -> MinimizeResult {
        let p = parse_program(src).unwrap();
        minimize(
            p.query(qname).unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn intro_example_drops_dep_conjunct() {
        let r = run_minimize(
            "relation EMP(eno, sal, dept). relation DEP(dno, loc).
             ind EMP[dept] <= DEP[dno].
             Q1(e) :- EMP(e, s, d), DEP(d, l).",
            "Q1",
        );
        assert_eq!(r.query.num_atoms(), 1);
        assert_eq!(r.removed, vec![1]);
        assert!(r.exact);
    }

    #[test]
    fn without_ind_nothing_drops() {
        let r = run_minimize(
            "relation EMP(eno, sal, dept). relation DEP(dno, loc).
             Q1(e) :- EMP(e, s, d), DEP(d, l).",
            "Q1",
        );
        assert_eq!(r.query.num_atoms(), 2);
        assert!(r.removed.is_empty());
    }

    #[test]
    fn chandra_merlin_core() {
        // R(x,y), R(x,z): without dependencies the second atom folds into
        // the first (map z ↦ y).
        let r = run_minimize(
            "relation R(a, b).
             Q(x) :- R(x, y), R(x, z).",
            "Q",
        );
        assert_eq!(r.query.num_atoms(), 1);
    }

    #[test]
    fn cycle_is_minimal_without_deps() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y), R(y, x).",
        )
        .unwrap();
        assert!(is_minimal(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default()
        )
        .unwrap());
    }

    #[test]
    fn fd_enables_deletion() {
        // With R: a -> b, R(x, y), R(x, z) chase-merges, so one atom
        // suffices (already true without FDs here, but the FD also makes
        // the *joined* variant collapsible).
        let r = run_minimize(
            "relation R(a, b). relation S(b).
             fd R: a -> b.
             Q(x) :- R(x, y), R(x, z), S(y).",
            "Q",
        );
        // S(y) stays; R duplicates collapse to one atom.
        assert_eq!(r.query.num_atoms(), 2);
    }

    #[test]
    fn cascading_deletions_under_inds() {
        // A chain R→S→T of INDs lets both the S and T conjuncts go.
        let r = run_minimize(
            "relation R(a). relation S(a). relation T(a).
             ind R[1] <= S[1]. ind S[1] <= T[1].
             Q(x) :- R(x), S(x), T(x).",
            "Q",
        );
        assert_eq!(r.query.num_atoms(), 1);
        assert_eq!(r.removed.len(), 2);
    }

    #[test]
    fn single_atom_is_minimal() {
        let p = parse_program("relation R(a). Q(x) :- R(x).").unwrap();
        let r = minimize(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap();
        assert_eq!(r.query.num_atoms(), 1);
        assert!(is_minimal(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default()
        )
        .unwrap());
    }

    #[test]
    fn minimized_query_is_equivalent() {
        use crate::containment::equivalent;
        let p = parse_program(
            "relation R(a, b). relation S(a).
             ind R[1] <= S[1].
             Q(x) :- R(x, y), S(x), R(x, z).",
        )
        .unwrap();
        let r = minimize(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap();
        let eq = equivalent(
            p.query("Q").unwrap(),
            &r.query,
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap();
        assert!(eq.equivalent());
        assert_eq!(r.query.num_atoms(), 1);
    }
}
