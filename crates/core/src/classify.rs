//! Classification of dependency sets — which decision procedure applies.
//!
//! The paper's positive results cover Σ that (i) consists entirely of
//! INDs, or (ii) is **key-based**:
//!
//! > *(a) For a given relation R, the FDs `R: Z → A` all have the same
//! > left-hand side `Z`, and every attribute `A` of relation `R` which is
//! > not in `Z` is the right-hand side of some FD for `R`; and*
//! >
//! > *(b) each IND `R[X] ⊆ S[Y]` has its right-hand side `Y` contained in
//! > the left-hand side of an FD for the relation `S`, and its left-hand
//! > side `X` disjoint from the left-hand sides of the FDs for the
//! > relation `R`.*
//!
//! Note (a) implies `Z` is a key for `R`. Mixed FD+IND sets outside these
//! classes are classified [`SigmaClass::Mixed`]; for them the containment
//! problem is open (and the related inference problem undecidable,
//! Mitchell 1983), so the engine falls back to a sound semi-decision.

use cqchase_index::FxHashMap;

use cqchase_ir::{Catalog, DependencySet, RelId};

/// The classes of Σ the engine distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmaClass {
    /// No dependencies: pure Chandra–Merlin containment.
    Empty,
    /// Only FDs: the classical finite chase decides containment.
    FdsOnly,
    /// Only INDs (paper case (i)); `width` is the maximum IND width `W`.
    IndsOnly {
        /// Maximum IND width.
        width: usize,
    },
    /// Key-based FDs + INDs (paper case (ii)).
    KeyBased {
        /// Maximum IND width.
        width: usize,
        /// The key (common FD left-hand side) of each relation that has
        /// FDs.
        keys: FxHashMap<RelId, Vec<usize>>,
    },
    /// FDs and INDs together, but not key-based: only a semi-decision is
    /// available.
    Mixed,
}

impl SigmaClass {
    /// Whether the Theorem 2 level bound certifies negative answers for
    /// this class.
    pub fn bound_is_certified(&self) -> bool {
        !matches!(self, SigmaClass::Mixed)
    }

    /// Which chase discipline the paper uses for this class.
    pub fn preferred_mode(&self) -> crate::chase::ChaseMode {
        match self {
            // INDs-only: the paper's certificate argument uses the
            // O-chase; key-based (and everything else): the R-chase.
            SigmaClass::IndsOnly { .. } => crate::chase::ChaseMode::Oblivious,
            _ => crate::chase::ChaseMode::Required,
        }
    }
}

/// Explains why Σ is not key-based, or returns the per-relation keys if
/// it is. (Only meaningful when Σ mixes FDs and INDs; callers normally go
/// through [`classify`].)
pub fn key_based_keys(
    deps: &DependencySet,
    catalog: &Catalog,
) -> Result<FxHashMap<RelId, Vec<usize>>, String> {
    let mut keys: FxHashMap<RelId, Vec<usize>> = FxHashMap::default();
    // Condition (a).
    for rel in catalog.rel_ids() {
        let fds: Vec<_> = deps.fds_for(rel).collect();
        if fds.is_empty() {
            continue;
        }
        let z = fds[0].lhs.clone();
        for fd in &fds {
            if fd.lhs != z {
                return Err(format!(
                    "relation {} has FDs with different left-hand sides",
                    catalog.name(rel)
                ));
            }
        }
        for col in 0..catalog.arity(rel) {
            if !z.contains(&col) && !fds.iter().any(|fd| fd.rhs == col) {
                return Err(format!(
                    "attribute {} of {} is neither in the key nor determined by it",
                    catalog.schema(rel).attribute(col),
                    catalog.name(rel)
                ));
            }
        }
        keys.insert(rel, z);
    }
    // Condition (b).
    for ind in deps.inds() {
        match keys.get(&ind.rhs_rel) {
            None => {
                return Err(format!(
                    "IND into {} whose target relation has no FDs (no key)",
                    catalog.name(ind.rhs_rel)
                ));
            }
            Some(key) => {
                if !ind.rhs_cols.iter().all(|c| key.contains(c)) {
                    return Err(format!(
                        "IND right-hand side not contained in the key of {}",
                        catalog.name(ind.rhs_rel)
                    ));
                }
            }
        }
        if let Some(key) = keys.get(&ind.lhs_rel) {
            if ind.lhs_cols.iter().any(|c| key.contains(c)) {
                return Err(format!(
                    "IND left-hand side intersects the key of {}",
                    catalog.name(ind.lhs_rel)
                ));
            }
        }
    }
    Ok(keys)
}

/// Classifies Σ.
pub fn classify(deps: &DependencySet, catalog: &Catalog) -> SigmaClass {
    let n_fds = deps.num_fds();
    let n_inds = deps.num_inds();
    if n_fds == 0 && n_inds == 0 {
        return SigmaClass::Empty;
    }
    if n_inds == 0 {
        return SigmaClass::FdsOnly;
    }
    let width = deps.max_ind_width();
    if n_fds == 0 {
        return SigmaClass::IndsOnly { width };
    }
    match key_based_keys(deps, catalog) {
        Ok(keys) => SigmaClass::KeyBased { width, keys },
        Err(_) => SigmaClass::Mixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::ChaseMode;
    use cqchase_ir::parse_program;

    fn class_of(src: &str) -> SigmaClass {
        let p = parse_program(src).unwrap();
        classify(&p.deps, &p.catalog)
    }

    #[test]
    fn empty_class() {
        assert_eq!(class_of("relation R(a)."), SigmaClass::Empty);
    }

    #[test]
    fn fds_only() {
        assert_eq!(
            class_of("relation R(a, b). fd R: a -> b."),
            SigmaClass::FdsOnly
        );
    }

    #[test]
    fn inds_only_width() {
        assert_eq!(
            class_of(
                "relation R(a, b, c). relation S(x, y, z).
                 ind R[1, 2] <= S[2, 3]. ind S[1] <= R[1]."
            ),
            SigmaClass::IndsOnly { width: 2 }
        );
    }

    #[test]
    fn key_based_accepted() {
        // EMP(eno, sal, dept) with key eno, DEP(dno, loc) with key dno,
        // IND EMP[dept] ⊆ DEP[dno]: dept is non-key in EMP, dno is the
        // key of DEP — textbook key-based.
        let c = class_of(
            "relation EMP(eno, sal, dept). relation DEP(dno, loc).
             fd EMP: eno -> sal. fd EMP: eno -> dept.
             fd DEP: dno -> loc.
             ind EMP[dept] <= DEP[dno].",
        );
        match c {
            SigmaClass::KeyBased { width, keys } => {
                assert_eq!(width, 1);
                assert_eq!(keys.len(), 2);
            }
            other => panic!("expected KeyBased, got {other:?}"),
        }
    }

    #[test]
    fn different_lhs_not_key_based() {
        assert_eq!(
            class_of(
                "relation R(a, b, c).
                 fd R: a -> b. fd R: b -> c.
                 ind R[3] <= R[1]."
            ),
            SigmaClass::Mixed
        );
    }

    #[test]
    fn uncovered_attribute_not_key_based() {
        // c is neither in the key {a} nor determined by it.
        assert_eq!(
            class_of(
                "relation R(a, b, c). relation S(k, v).
                 fd R: a -> b. fd S: k -> v.
                 ind R[3] <= S[1]."
            ),
            SigmaClass::Mixed
        );
    }

    #[test]
    fn ind_into_keyless_relation_not_key_based() {
        assert_eq!(
            class_of(
                "relation R(a, b). relation S(x, y).
                 fd R: a -> b.
                 ind R[2] <= S[1]."
            ),
            SigmaClass::Mixed
        );
    }

    #[test]
    fn ind_rhs_outside_key_not_key_based() {
        assert_eq!(
            class_of(
                "relation R(a, b). relation S(k, v).
                 fd R: a -> b. fd S: k -> v.
                 ind R[2] <= S[2]." // v is not in S's key
            ),
            SigmaClass::Mixed
        );
    }

    #[test]
    fn ind_lhs_hits_own_key_not_key_based() {
        // X must be disjoint from the key of R.
        assert_eq!(
            class_of(
                "relation R(a, b). relation S(k, v).
                 fd R: a -> b. fd S: k -> v.
                 ind R[1] <= S[1]."
            ),
            SigmaClass::Mixed
        );
    }

    #[test]
    fn section4_sigma_is_key_based() {
        // Σ = {R: {2} → 1, R[2] ⊆ R[1]}: key of R is {b}; a is determined;
        // IND's Y = [a]… wait, Y must lie in the key {b}? Column 1 is `a`,
        // not in the key — so this Σ is *not* key-based (which is exactly
        // why the paper's finite counterexample can exist: Theorem 3(ii)
        // would otherwise forbid it).
        assert_eq!(
            class_of(
                "relation R(a, b).
                 fd R: b -> a.
                 ind R[2] <= R[1]."
            ),
            SigmaClass::Mixed
        );
    }

    #[test]
    fn wide_key_based() {
        let c = class_of(
            "relation F(k1, k2, p, q). relation G(g1, g2, w).
             fd F: k1, k2 -> p. fd F: k1, k2 -> q.
             fd G: g1, g2 -> w.
             ind F[p, q] <= G[g1, g2].",
        );
        assert!(matches!(c, SigmaClass::KeyBased { width: 2, .. }), "{c:?}");
    }

    #[test]
    fn preferred_modes() {
        assert_eq!(
            SigmaClass::IndsOnly { width: 1 }.preferred_mode(),
            ChaseMode::Oblivious
        );
        assert_eq!(SigmaClass::Empty.preferred_mode(), ChaseMode::Required);
        assert!(SigmaClass::Mixed.preferred_mode() == ChaseMode::Required);
        assert!(!SigmaClass::Mixed.bound_is_certified());
        assert!(SigmaClass::FdsOnly.bound_is_certified());
    }
}
