//! # cqchase-core — chase engines and containment testing
//!
//! The primary contribution of Johnson & Klug (PODS 1982): testing
//! containment of conjunctive queries under functional and inclusion
//! dependencies via (potentially infinite) chases, made effective by the
//! Theorem 2 level bound.
//!
//! * [`chase`] — the O-chase and R-chase drivers, chase graph, bound;
//! * [`hom`] — homomorphism search (queries → queries/chases), the
//!   Chandra–Merlin primitive;
//! * [`classify`](mod@classify) — Σ classification (empty / FDs-only / INDs-only /
//!   key-based / mixed), which selects the decision procedure;
//! * [`containment`] — the Theorem 1/Theorem 2 decision procedures for
//!   `Σ ⊨ Q ⊆∞ Q′`, plus equivalence;
//! * [`minimize`](mod@minimize) — conjunct-minimization under dependencies;
//! * [`inference`] — FD closure, the Casanova–Fagin–Papadimitriou IND
//!   axioms, and the Corollary 2.3 reduction of IND inference to
//!   containment;
//! * [`finite`] — Section 4: finite controllability, the `k_Σ` constant,
//!   the finite counterexample, the `Q*` closing-off construction, and
//!   empirical finite-containment checking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase;
pub mod classify;
pub mod containment;
pub mod finite;
pub mod hom;
pub mod inference;
pub mod isomorphism;
pub mod minimize;

pub use chase::{chase_query, theorem2_bound, Chase, ChaseBudget, ChaseMode, ChaseStatus};
pub use classify::{classify, SigmaClass};
pub use containment::{
    check_batch, check_batch_cancellable, contained, contained_with_cancel, equivalent,
    ContainmentAnswer, ContainmentEngineError, ContainmentOptions, ContainmentPair,
};
pub use hom::{find_query_hom, render_chase_witness, ChaseHomFinder, HomFinder, Homomorphism};
pub use isomorphism::{cm_core, is_isomorphic, iso_key};
pub use minimize::{is_minimal, minimize};
