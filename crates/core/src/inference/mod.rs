//! Dependency inference.
//!
//! * [`fd_closure`] — Armstrong-style attribute-set closure for FDs
//!   (polynomial; the paper contrasts this with the IND case);
//! * [`ind_axioms`] — the Casanova–Fagin–Papadimitriou proof system for
//!   INDs (reflexivity, projection & permutation, transitivity), complete
//!   for IND implication and PSPACE-complete in general;
//! * [`reduction`] — Corollary 2.3's embedding of IND inference into
//!   conjunctive-query containment, giving a second, chase-based decision
//!   procedure the experiments cross-check against the axiomatic one.

pub mod fd_closure;
pub mod ind_axioms;
pub mod reduction;

pub use fd_closure::{attribute_closure, candidate_keys, implies_fd, is_superkey};
pub use ind_axioms::{implies_ind_axiomatic, saturate_inds, IndSaturation};
pub use reduction::{implies_fd_via_chase, implies_ind_via_chase, ind_inference_queries};
