//! Corollary 2.3: IND inference as a special case of query containment.
//!
//! Given a goal IND `R[X] ⊆ S[Y]` of width `k`, build
//!
//! ```text
//! Q (x₁…x_k) :- R(…)                   // x_i at the X positions
//! Q′(x₁…x_k) :- R(…), S(…)             // x_i at the Y positions of S
//! ```
//!
//! Then `R[X] ⊆ S[Y]` can be inferred from Σ iff `Σ ⊨ Q ⊆∞ Q′`. The
//! paper states the construction for `X`/`Y` being leading columns; we
//! implement the general positional version (the generalization is the
//! obvious renaming).

use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet, Ind, QueryBuilder};

use crate::containment::{
    contained, ContainmentAnswer, ContainmentEngineError, ContainmentOptions,
};

/// Builds the pair `(Q, Q′)` of Corollary 2.3 for `goal`.
pub fn ind_inference_queries(
    goal: &Ind,
    catalog: &Catalog,
) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let r_name = catalog.name(goal.lhs_rel).to_owned();
    let s_name = catalog.name(goal.rhs_rel).to_owned();
    let r_arity = catalog.arity(goal.lhs_rel);
    let s_arity = catalog.arity(goal.rhs_rel);

    // Head variable for the i-th X column (shared between Q and Q′).
    let head_vars: Vec<String> = (0..goal.width()).map(|i| format!("x{i}")).collect();

    // The R atom: head var at X positions, fresh `y` elsewhere.
    let r_terms: Vec<String> = (0..r_arity)
        .map(|col| match goal.lhs_cols.iter().position(|&c| c == col) {
            Some(k) => head_vars[k].clone(),
            None => format!("y{col}"),
        })
        .collect();
    // The S atom of Q′: head var at Y positions, fresh `z` elsewhere.
    let s_terms: Vec<String> = (0..s_arity)
        .map(|col| match goal.rhs_cols.iter().position(|&c| c == col) {
            Some(k) => head_vars[k].clone(),
            None => format!("z{col}"),
        })
        .collect();

    let q = QueryBuilder::new("Q_ind", catalog)
        .head_vars(head_vars.clone())
        .atom(&r_name, r_terms.clone())
        .expect("goal relations exist in the catalog")
        .build()
        .expect("construction is well-formed");
    let q_prime = QueryBuilder::new("Qp_ind", catalog)
        .head_vars(head_vars)
        .atom(&r_name, r_terms)
        .expect("goal relations exist in the catalog")
        .atom(&s_name, s_terms)
        .expect("goal relations exist in the catalog")
        .build()
        .expect("construction is well-formed");
    (q, q_prime)
}

/// Decides `Σ ⊨ R: Z → A` by chasing the classical *two-row tableau*:
/// a Boolean query with two `R` conjuncts sharing variables exactly on
/// `Z`. The FD is implied iff the chase identifies the two `A`-entries.
///
/// For Σ containing only FDs this is the textbook (exact, polynomial)
/// test and agrees with [`attribute_closure`]-based
/// [`implies_fd`](crate::inference::fd_closure::implies_fd); with INDs
/// present it is a chase-limited semi-decision (`None` = inconclusive
/// within budget — FD+IND implication is undecidable in general,
/// Mitchell 1983).
///
/// [`attribute_closure`]: crate::inference::fd_closure::attribute_closure
pub fn implies_fd_via_chase(
    sigma: &DependencySet,
    goal: &cqchase_ir::Fd,
    catalog: &Catalog,
    budget: crate::chase::ChaseBudget,
) -> Option<bool> {
    use crate::chase::{Chase, ChaseMode, ChaseStatus, ConjId};
    let arity = catalog.arity(goal.relation);
    let rel_name = catalog.name(goal.relation).to_owned();
    let row = |tag: &str| -> Vec<String> {
        (0..arity)
            .map(|col| {
                if goal.lhs.contains(&col) {
                    format!("z{col}") // shared on Z
                } else {
                    format!("{tag}{col}")
                }
            })
            .collect()
    };
    let q = cqchase_ir::QueryBuilder::new("fd_tableau", catalog)
        .head_vars(Vec::<String>::new())
        .atom(&rel_name, row("u"))
        .expect("relation exists")
        .atom(&rel_name, row("v"))
        .expect("relation exists")
        .build()
        .expect("tableau is well-formed");
    let mut chase = Chase::new(&q, sigma, catalog, ChaseMode::Required);
    let status = chase.run_to_completion(budget);
    let identified = || {
        let c0 = chase.state().resolve_conjunct(ConjId(0));
        let c1 = chase.state().resolve_conjunct(ConjId(1));
        chase.state().conjunct(c0).terms[goal.rhs] == chase.state().conjunct(c1).terms[goal.rhs]
    };
    match status {
        ChaseStatus::Failed => Some(true), // tableau inconsistent ⇒ vacuous
        ChaseStatus::Complete => Some(identified()),
        // Identification is monotone: once equal, forever equal — so a
        // positive early answer is sound even on a truncated chase.
        _ if identified() => Some(true),
        _ => None,
    }
}

/// Decides `Σ ⊨ R[X] ⊆ S[Y]` through the containment engine.
///
/// Exact for Σ consisting of INDs only or key-based (Theorem 2 classes);
/// see [`ContainmentAnswer::exact`] otherwise.
pub fn implies_ind_via_chase(
    sigma: &DependencySet,
    goal: &Ind,
    catalog: &Catalog,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentEngineError> {
    let (q, q_prime) = ind_inference_queries(goal, catalog);
    contained(&q, &q_prime, sigma, catalog, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::ind_axioms::implies_ind_axiomatic;
    use cqchase_ir::parse_program;

    fn goal(p: &cqchase_ir::Program, l: &str, lc: Vec<usize>, r: &str, rc: Vec<usize>) -> Ind {
        Ind::new(
            p.catalog.resolve(l).unwrap(),
            lc,
            p.catalog.resolve(r).unwrap(),
            rc,
        )
    }

    #[test]
    fn construction_shape() {
        let p = parse_program("relation R(a, b, c). relation S(x, y).").unwrap();
        let g = goal(&p, "R", vec![2, 0], "S", vec![0, 1]);
        let (q, qp) = ind_inference_queries(&g, &p.catalog);
        assert_eq!(q.num_atoms(), 1);
        assert_eq!(qp.num_atoms(), 2);
        assert_eq!(q.output_arity(), 2);
        assert_eq!(qp.output_arity(), 2);
        // Q's R atom has x0 at column 2 and x1 at column 0.
        let x0 = q.vars.resolve("x0").unwrap();
        let x1 = q.vars.resolve("x1").unwrap();
        assert_eq!(q.atoms[0].terms[2], cqchase_ir::Term::Var(x0));
        assert_eq!(q.atoms[0].terms[0], cqchase_ir::Term::Var(x1));
    }

    #[test]
    fn chase_agrees_with_axioms_transitive() {
        let p = parse_program(
            "relation R(a). relation S(a). relation T(a).
             ind R[1] <= S[1]. ind S[1] <= T[1].",
        )
        .unwrap();
        let opts = ContainmentOptions::default();
        let yes = goal(&p, "R", vec![0], "T", vec![0]);
        let no = goal(&p, "T", vec![0], "R", vec![0]);
        assert!(
            implies_ind_via_chase(&p.deps, &yes, &p.catalog, &opts)
                .unwrap()
                .contained
        );
        assert!(
            !implies_ind_via_chase(&p.deps, &no, &p.catalog, &opts)
                .unwrap()
                .contained
        );
        assert_eq!(implies_ind_axiomatic(&p.deps, &yes, 100_000), Some(true));
        assert_eq!(implies_ind_axiomatic(&p.deps, &no, 100_000), Some(false));
    }

    #[test]
    fn chase_agrees_with_axioms_projection() {
        let p = parse_program(
            "relation R(a, b). relation S(x, y).
             ind R[1, 2] <= S[1, 2].",
        )
        .unwrap();
        let opts = ContainmentOptions::default();
        let cases = [
            (goal(&p, "R", vec![0], "S", vec![0]), true),
            (goal(&p, "R", vec![1], "S", vec![1]), true),
            (goal(&p, "R", vec![1, 0], "S", vec![1, 0]), true),
            (goal(&p, "R", vec![0], "S", vec![1]), false),
            (goal(&p, "S", vec![0], "R", vec![0]), false),
        ];
        for (g, expect) in cases {
            let chase = implies_ind_via_chase(&p.deps, &g, &p.catalog, &opts)
                .unwrap()
                .contained;
            let ax = implies_ind_axiomatic(&p.deps, &g, 1_000_000).unwrap();
            assert_eq!(chase, expect, "chase on {g:?}");
            assert_eq!(ax, expect, "axioms on {g:?}");
        }
    }

    #[test]
    fn fd_tableau_agrees_with_closure() {
        use crate::chase::ChaseBudget;
        use crate::inference::fd_closure::implies_fd;
        use cqchase_ir::Fd;
        let p = parse_program(
            "relation R(a, b, c).
             fd R: a -> b. fd R: b -> c.",
        )
        .unwrap();
        let r = p.catalog.resolve("R").unwrap();
        let cases = [
            (Fd::new(r, vec![0], 2), true),  // transitive
            (Fd::new(r, vec![1], 2), true),  // direct
            (Fd::new(r, vec![2], 0), false), // reversed
            (Fd::new(r, vec![1], 0), false),
        ];
        for (fd, expect) in cases {
            let closure = implies_fd(&p.deps, &fd);
            let chase = implies_fd_via_chase(&p.deps, &fd, &p.catalog, ChaseBudget::default());
            assert_eq!(closure, expect, "{fd:?}");
            assert_eq!(chase, Some(expect), "{fd:?}");
        }
    }

    #[test]
    fn fd_tableau_with_composite_lhs() {
        use crate::chase::ChaseBudget;
        use cqchase_ir::Fd;
        let p = parse_program(
            "relation R(a, b, c, d).
             fd R: a, b -> c.",
        )
        .unwrap();
        let r = p.catalog.resolve("R").unwrap();
        assert_eq!(
            implies_fd_via_chase(
                &p.deps,
                &Fd::new(r, vec![0, 1], 2),
                &p.catalog,
                ChaseBudget::default()
            ),
            Some(true)
        );
        assert_eq!(
            implies_fd_via_chase(
                &p.deps,
                &Fd::new(r, vec![0], 2),
                &p.catalog,
                ChaseBudget::default()
            ),
            Some(false)
        );
        assert_eq!(
            implies_fd_via_chase(
                &p.deps,
                &Fd::new(r, vec![0, 1], 3),
                &p.catalog,
                ChaseBudget::default()
            ),
            Some(false)
        );
    }

    #[test]
    fn fd_tableau_with_inds_positive() {
        use crate::chase::ChaseBudget;
        use cqchase_ir::Fd;
        // INDs that do not interact: the FD still decides.
        let p = parse_program(
            "relation R(a, b). relation S(x).
             fd R: a -> b.
             ind R[1] <= S[1].",
        )
        .unwrap();
        let r = p.catalog.resolve("R").unwrap();
        assert_eq!(
            implies_fd_via_chase(
                &p.deps,
                &Fd::new(r, vec![0], 1),
                &p.catalog,
                ChaseBudget::default()
            ),
            Some(true)
        );
    }

    #[test]
    fn trivial_goal_holds() {
        let p = parse_program("relation R(a, b).").unwrap();
        let g = goal(&p, "R", vec![0], "R", vec![0]);
        let opts = ContainmentOptions::default();
        assert!(
            implies_ind_via_chase(&p.deps, &g, &p.catalog, &opts)
                .unwrap()
                .contained
        );
    }

    #[test]
    fn same_relation_cycle() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].",
        )
        .unwrap();
        let opts = ContainmentOptions::default();
        // R[2] ⊆ R[1] holds (it is in Σ); R[1] ⊆ R[2] does not.
        assert!(
            implies_ind_via_chase(
                &p.deps,
                &goal(&p, "R", vec![1], "R", vec![0]),
                &p.catalog,
                &opts
            )
            .unwrap()
            .contained
        );
        assert!(
            !implies_ind_via_chase(
                &p.deps,
                &goal(&p, "R", vec![0], "R", vec![1]),
                &p.catalog,
                &opts
            )
            .unwrap()
            .contained
        );
    }
}
