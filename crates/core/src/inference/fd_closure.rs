//! FD implication via attribute-set closure.
//!
//! The classical polynomial-time procedure: `Σ ⊨ R: Z → A` iff
//! `A ∈ closure_Σ(Z)` where the closure repeatedly fires FDs whose
//! left-hand sides are covered. The paper cites this as the easy
//! counterpoint to IND inference (PSPACE-complete) and FD+IND inference
//! (undecidable).

use std::collections::BTreeSet;

use cqchase_ir::{Catalog, DependencySet, Fd, RelId};

/// The closure of `attrs` under the FDs of Σ that constrain `rel`.
pub fn attribute_closure(sigma: &DependencySet, rel: RelId, attrs: &[usize]) -> BTreeSet<usize> {
    let fds: Vec<&Fd> = sigma.fds_for(rel).collect();
    let mut closure: BTreeSet<usize> = attrs.iter().copied().collect();
    loop {
        let mut grew = false;
        for fd in &fds {
            if !closure.contains(&fd.rhs) && fd.lhs.iter().all(|a| closure.contains(a)) {
                closure.insert(fd.rhs);
                grew = true;
            }
        }
        if !grew {
            return closure;
        }
    }
}

/// Whether `Σ ⊨ fd` (FDs of Σ only; INDs do not interact in this
/// fragment).
pub fn implies_fd(sigma: &DependencySet, fd: &Fd) -> bool {
    attribute_closure(sigma, fd.relation, &fd.lhs).contains(&fd.rhs)
}

/// Whether `attrs` is a superkey of `rel` under Σ's FDs.
pub fn is_superkey(sigma: &DependencySet, catalog: &Catalog, rel: RelId, attrs: &[usize]) -> bool {
    let closure = attribute_closure(sigma, rel, attrs);
    (0..catalog.arity(rel)).all(|c| closure.contains(&c))
}

/// All candidate keys (minimal superkeys) of `rel` under Σ's FDs, each
/// sorted ascending; the list is sorted by (size, lexicographic).
///
/// Exhaustive over attribute subsets, so callers should keep arities
/// modest (the enumeration is `2^arity`; we refuse above 16 columns).
pub fn candidate_keys(
    sigma: &DependencySet,
    catalog: &Catalog,
    rel: RelId,
) -> Option<Vec<Vec<usize>>> {
    let arity = catalog.arity(rel);
    if arity > 16 {
        return None;
    }
    if arity == 0 {
        return Some(vec![vec![]]);
    }
    let mut keys: Vec<Vec<usize>> = Vec::new();
    // Enumerate subsets in increasing popcount so minimality is a simple
    // superset check against already-found keys.
    let mut masks: Vec<u32> = (0u32..(1 << arity)).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        let attrs: Vec<usize> = (0..arity).filter(|c| mask & (1 << c) != 0).collect();
        if keys.iter().any(|k| k.iter().all(|c| attrs.contains(c))) {
            continue; // superset of a known key
        }
        if is_superkey(sigma, catalog, rel, &attrs) {
            keys.push(attrs);
        }
    }
    keys.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    fn setup() -> (cqchase_ir::Catalog, DependencySet, RelId) {
        let p = parse_program(
            "relation R(a, b, c, d).
             fd R: a -> b. fd R: b -> c.",
        )
        .unwrap();
        let rel = p.catalog.resolve("R").unwrap();
        (p.catalog, p.deps, rel)
    }

    #[test]
    fn transitive_closure() {
        let (_, sigma, r) = setup();
        let cl = attribute_closure(&sigma, r, &[0]);
        assert_eq!(cl.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn implies_transitively() {
        let (_, sigma, r) = setup();
        assert!(implies_fd(&sigma, &Fd::new(r, vec![0], 2)));
        assert!(!implies_fd(&sigma, &Fd::new(r, vec![0], 3)));
        assert!(!implies_fd(&sigma, &Fd::new(r, vec![1], 0)));
        // Trivial FDs are implied (rhs in closure of lhs immediately).
        assert!(implies_fd(&sigma, &Fd::new(r, vec![2, 3], 3)));
    }

    #[test]
    fn superkey_check() {
        let (cat, sigma, r) = setup();
        assert!(is_superkey(&sigma, &cat, r, &[0, 3]));
        assert!(!is_superkey(&sigma, &cat, r, &[0]));
        assert!(is_superkey(&sigma, &cat, r, &[0, 1, 2, 3]));
    }

    #[test]
    fn composite_lhs_fires_only_when_covered() {
        let p = parse_program(
            "relation S(x, y, z).
             fd S: x, y -> z.",
        )
        .unwrap();
        let s = p.catalog.resolve("S").unwrap();
        assert_eq!(attribute_closure(&p.deps, s, &[0]).len(), 1);
        assert_eq!(attribute_closure(&p.deps, s, &[0, 1]).len(), 3);
    }

    #[test]
    fn candidate_keys_basic() {
        let (cat, sigma, r) = setup();
        // R(a,b,c,d) with a→b, b→c: every key must include a and d.
        let keys = candidate_keys(&sigma, &cat, r).unwrap();
        assert_eq!(keys, vec![vec![0, 3]]);
    }

    #[test]
    fn candidate_keys_multiple() {
        let p = parse_program(
            "relation R(a, b).
             fd R: a -> b. fd R: b -> a.",
        )
        .unwrap();
        let r = p.catalog.resolve("R").unwrap();
        let keys = candidate_keys(&p.deps, &p.catalog, r).unwrap();
        assert_eq!(keys, vec![vec![0], vec![1]]);
    }

    #[test]
    fn candidate_keys_no_fds() {
        let p = parse_program("relation R(a, b).").unwrap();
        let r = p.catalog.resolve("R").unwrap();
        let keys = candidate_keys(&p.deps, &p.catalog, r).unwrap();
        assert_eq!(keys, vec![vec![0, 1]]);
    }

    #[test]
    fn other_relations_ignored() {
        let p = parse_program(
            "relation R(a, b). relation S(a, b).
             fd S: a -> b.",
        )
        .unwrap();
        let r = p.catalog.resolve("R").unwrap();
        assert!(!implies_fd(&p.deps, &Fd::new(r, vec![0], 1)));
    }
}
