//! The Casanova–Fagin–Papadimitriou axiomatization of IND implication.
//!
//! Three rules are sound and complete for (finite and unrestricted)
//! implication of INDs by INDs (CFP, cited as \[3\] in the paper):
//!
//! 1. **Reflexivity**: `R[X] ⊆ R[X]` for any sequence `X` of distinct
//!    attributes;
//! 2. **Projection & permutation**: from `R[A₁…Aₘ] ⊆ S[B₁…Bₘ]` derive
//!    `R[A_{i₁}…A_{iₖ}] ⊆ S[B_{i₁}…B_{iₖ}]` for any sequence of distinct
//!    indices `i₁…iₖ`;
//! 3. **Transitivity**: from `R[X] ⊆ S[Y]` and `S[Y] ⊆ T[Z]` derive
//!    `R[X] ⊆ T[Z]`.
//!
//! Since projection never widens an IND and transitivity preserves width,
//! every derivation for a goal of width `k` stays within the width of the
//! widest premise, so forward saturation over the finite IND universe
//! decides implication. The universe is exponential in relation arity
//! (this is where PSPACE-hardness lives), so saturation carries a step
//! budget.

use std::collections::VecDeque;

use cqchase_index::FxHashSet;
use cqchase_ir::{DependencySet, Ind};

/// Result of saturating a set of INDs under the CFP rules.
#[derive(Debug, Clone)]
pub struct IndSaturation {
    /// Every derivable IND up to the premise width (projection-closed).
    pub derived: FxHashSet<Ind>,
    /// Rule applications performed.
    pub steps: usize,
    /// Whether saturation finished (false: budget hit; `derived` is a
    /// sound under-approximation).
    pub complete: bool,
}

/// All projection/permutation images of `ind` (every sequence of distinct
/// index positions), including `ind` itself.
fn projections(ind: &Ind, out: &mut Vec<Ind>) {
    let m = ind.width();
    // Enumerate all non-empty sequences of distinct indices of length ≤ m
    // via DFS.
    let mut stack: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
    while let Some(seq) = stack.pop() {
        let proj = Ind::new(
            ind.lhs_rel,
            seq.iter().map(|&i| ind.lhs_cols[i]).collect(),
            ind.rhs_rel,
            seq.iter().map(|&i| ind.rhs_cols[i]).collect(),
        );
        out.push(proj);
        for i in 0..m {
            if !seq.contains(&i) {
                let mut next = seq.clone();
                next.push(i);
                stack.push(next);
            }
        }
    }
}

/// Saturates Σ's INDs under projection/permutation and transitivity.
/// `max_steps` bounds rule applications (the space is exponential in
/// arity).
pub fn saturate_inds(sigma: &DependencySet, max_steps: usize) -> IndSaturation {
    let mut derived: FxHashSet<Ind> = FxHashSet::default();
    let mut queue: VecDeque<Ind> = VecDeque::new();
    let mut steps = 0usize;
    let push = |ind: Ind, derived: &mut FxHashSet<Ind>, queue: &mut VecDeque<Ind>| {
        if !derived.contains(&ind) {
            derived.insert(ind.clone());
            queue.push_back(ind);
        }
    };
    for ind in sigma.inds() {
        let mut projs = Vec::new();
        projections(ind, &mut projs);
        for p in projs {
            push(p, &mut derived, &mut queue);
        }
    }
    let mut complete = true;
    'outer: while let Some(ind) = queue.pop_front() {
        // Transitivity in both directions against everything derived.
        let partners: Vec<Ind> = derived.iter().cloned().collect();
        for other in partners {
            steps += 1;
            if steps > max_steps {
                complete = false;
                break 'outer;
            }
            // ind ∘ other: ind: R[X] ⊆ S[Y], other: S[Y] ⊆ T[Z].
            if ind.rhs_rel == other.lhs_rel && ind.rhs_cols == other.lhs_cols {
                push(
                    Ind::new(
                        ind.lhs_rel,
                        ind.lhs_cols.clone(),
                        other.rhs_rel,
                        other.rhs_cols.clone(),
                    ),
                    &mut derived,
                    &mut queue,
                );
            }
            // other ∘ ind.
            if other.rhs_rel == ind.lhs_rel && other.rhs_cols == ind.lhs_cols {
                push(
                    Ind::new(
                        other.lhs_rel,
                        other.lhs_cols.clone(),
                        ind.rhs_rel,
                        ind.rhs_cols.clone(),
                    ),
                    &mut derived,
                    &mut queue,
                );
            }
        }
    }
    IndSaturation {
        derived,
        steps,
        complete,
    }
}

/// Whether `Σ ⊢ goal` in the CFP proof system (hence `Σ ⊨ goal` for both
/// finite and unrestricted databases).
///
/// Returns `None` if the saturation budget is exhausted before the goal
/// is derived (unknown); `Some(true/false)` otherwise.
pub fn implies_ind_axiomatic(sigma: &DependencySet, goal: &Ind, max_steps: usize) -> Option<bool> {
    // Reflexivity handles R[X] ⊆ R[X] goals outright.
    if goal.is_trivial() {
        return Some(true);
    }
    let sat = saturate_inds(sigma, max_steps);
    if sat.derived.contains(goal) {
        return Some(true);
    }
    if sat.complete {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    fn goal(p: &cqchase_ir::Program, l: &str, lc: Vec<usize>, r: &str, rc: Vec<usize>) -> Ind {
        Ind::new(
            p.catalog.resolve(l).unwrap(),
            lc,
            p.catalog.resolve(r).unwrap(),
            rc,
        )
    }

    #[test]
    fn transitivity_chain() {
        let p = parse_program(
            "relation R(a). relation S(a). relation T(a).
             ind R[1] <= S[1]. ind S[1] <= T[1].",
        )
        .unwrap();
        let g = goal(&p, "R", vec![0], "T", vec![0]);
        assert_eq!(implies_ind_axiomatic(&p.deps, &g, 100_000), Some(true));
        let not = goal(&p, "T", vec![0], "R", vec![0]);
        assert_eq!(implies_ind_axiomatic(&p.deps, &not, 100_000), Some(false));
    }

    #[test]
    fn projection_and_permutation() {
        let p = parse_program(
            "relation R(a, b, c). relation S(x, y, z).
             ind R[1, 2, 3] <= S[1, 2, 3].",
        )
        .unwrap();
        // Projection: R[1] ⊆ S[1].
        assert_eq!(
            implies_ind_axiomatic(&p.deps, &goal(&p, "R", vec![0], "S", vec![0]), 100_000),
            Some(true)
        );
        // Permutation: R[3, 1] ⊆ S[3, 1].
        assert_eq!(
            implies_ind_axiomatic(
                &p.deps,
                &goal(&p, "R", vec![2, 0], "S", vec![2, 0]),
                100_000
            ),
            Some(true)
        );
        // But not a *re-pairing*: R[1] ⊆ S[2] is not derivable.
        assert_eq!(
            implies_ind_axiomatic(&p.deps, &goal(&p, "R", vec![0], "S", vec![1]), 100_000),
            Some(false)
        );
    }

    #[test]
    fn reflexivity() {
        let p = parse_program("relation R(a, b).").unwrap();
        assert_eq!(
            implies_ind_axiomatic(&p.deps, &goal(&p, "R", vec![0, 1], "R", vec![0, 1]), 10),
            Some(true)
        );
    }

    #[test]
    fn projection_then_transitivity() {
        // R[1,2] ⊆ S[1,2] and S[1] ⊆ T[1] give R[1] ⊆ T[1] only via a
        // projection first.
        let p = parse_program(
            "relation R(a, b). relation S(x, y). relation T(u).
             ind R[1, 2] <= S[1, 2]. ind S[1] <= T[1].",
        )
        .unwrap();
        assert_eq!(
            implies_ind_axiomatic(&p.deps, &goal(&p, "R", vec![0], "T", vec![0]), 100_000),
            Some(true)
        );
    }

    #[test]
    fn cyclic_inds_saturate() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].",
        )
        .unwrap();
        // R[2] ⊆ R[1] does NOT give R[1] ⊆ R[2].
        assert_eq!(
            implies_ind_axiomatic(&p.deps, &goal(&p, "R", vec![0], "R", vec![1]), 100_000),
            Some(false)
        );
        // Composing the IND with itself stays R[2] ⊆ R[1] (no new facts).
        let sat = saturate_inds(&p.deps, 100_000);
        assert!(sat.complete);
        assert_eq!(sat.derived.len(), 1);
    }

    #[test]
    fn budget_returns_unknown() {
        let p = parse_program(
            "relation A(a). relation B(a). relation C(a).
             ind A[1] <= B[1]. ind B[1] <= C[1].",
        )
        .unwrap();
        let g = goal(&p, "A", vec![0], "C", vec![0]);
        assert_eq!(implies_ind_axiomatic(&p.deps, &g, 0), None);
    }

    #[test]
    fn projections_count() {
        // A width-2 IND has 1 (itself as [0,1]) + [1,0] + [0] + [1] = 4
        // projection images.
        let p = parse_program(
            "relation R(a, b). relation S(x, y).
             ind R[1, 2] <= S[1, 2].",
        )
        .unwrap();
        let ind = p.deps.inds().next().unwrap();
        let mut out = Vec::new();
        projections(ind, &mut out);
        let set: std::collections::HashSet<Ind> = out.into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
