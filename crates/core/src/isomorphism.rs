//! Query isomorphism and the Chandra–Merlin core.
//!
//! Maier, Mendelzon & Sagiv's canonicity result (cited by the paper for
//! the FD chase) says the chase is unique *up to renaming of variables*;
//! this module supplies that notion of equality. Two queries are
//! isomorphic when a bijective variable renaming maps one onto the other
//! (atoms as sets, summary rows aligned). The [`cm_core`] of a query is
//! its minimal equivalent subquery under Σ = ∅ — unique up to
//! isomorphism, which makes it a canonical form for dependency-free
//! equivalence.

use std::hash::{Hash, Hasher};

use cqchase_index::{FxHashMap, FxHasher};
use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet, Term, VarId};

use crate::containment::{ContainmentEngineError, ContainmentOptions};
use crate::minimize::minimize;

/// Attempts to extend a variable bijection so `a_terms` maps onto
/// `b_terms` (same positions). Returns the newly bound pairs on success.
fn match_terms(
    a_terms: &[Term],
    b_terms: &[Term],
    fwd: &mut FxHashMap<VarId, VarId>,
    bwd: &mut FxHashMap<VarId, VarId>,
) -> Option<Vec<(VarId, VarId)>> {
    let mut newly = Vec::new();
    for (ta, tb) in a_terms.iter().zip(b_terms.iter()) {
        let ok = match (ta, tb) {
            (Term::Const(ca), Term::Const(cb)) => ca == cb,
            (Term::Var(va), Term::Var(vb)) => match (fwd.get(va), bwd.get(vb)) {
                (Some(mapped), _) => mapped == vb,
                (None, Some(_)) => false, // vb already taken by another var
                (None, None) => {
                    fwd.insert(*va, *vb);
                    bwd.insert(*vb, *va);
                    newly.push((*va, *vb));
                    true
                }
            },
            _ => false,
        };
        if !ok {
            for (va, vb) in &newly {
                fwd.remove(va);
                bwd.remove(vb);
            }
            return None;
        }
    }
    Some(newly)
}

fn search(
    a: &ConjunctiveQuery,
    b: &ConjunctiveQuery,
    idx: usize,
    used: &mut Vec<bool>,
    fwd: &mut FxHashMap<VarId, VarId>,
    bwd: &mut FxHashMap<VarId, VarId>,
) -> bool {
    if idx == a.atoms.len() {
        return true;
    }
    let atom_a = &a.atoms[idx];
    for (j, atom_b) in b.atoms.iter().enumerate() {
        if used[j] || atom_b.relation != atom_a.relation {
            continue;
        }
        if let Some(newly) = match_terms(&atom_a.terms, &atom_b.terms, fwd, bwd) {
            used[j] = true;
            if search(a, b, idx + 1, used, fwd, bwd) {
                return true;
            }
            used[j] = false;
            for (va, vb) in newly {
                fwd.remove(&va);
                bwd.remove(&vb);
            }
        }
    }
    false
}

/// Whether `a` and `b` are isomorphic: equal up to a bijective variable
/// renaming that aligns atoms (as multisets) and summary rows.
pub fn is_isomorphic(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    if a.atoms.len() != b.atoms.len() || a.head.len() != b.head.len() {
        return false;
    }
    let mut fwd = FxHashMap::default();
    let mut bwd = FxHashMap::default();
    // Summary rows must align under the same bijection.
    if match_terms(&a.head, &b.head, &mut fwd, &mut bwd).is_none() {
        return false;
    }
    let mut used = vec![false; b.atoms.len()];
    search(a, b, 0, &mut used, &mut fwd, &mut bwd)
}

/// A 64-bit key *invariant under isomorphism*: renaming variables or
/// reordering atoms never changes a query's key, so isomorphic queries
/// always collide. The converse does not hold — distinct queries can
/// share a key (it is a hash) — so callers bucketing by `iso_key` must
/// confirm candidates with [`is_isomorphic`] before treating them as
/// equal. That is exactly how the `cqchase-service` semantic cache uses
/// it: a key collision costs one extra exact check, never a wrong
/// answer.
///
/// Construction: each variable gets a signature from its (sorted)
/// occurrence profile — the multiset of `(relation, column)` slots it
/// fills, head slots tagged specially — then atoms hash positionally
/// over constant values and variable signatures, the atom hashes are
/// sorted (order-invariance), and the summary row is hashed
/// positionally on top.
pub fn iso_key(q: &ConjunctiveQuery) -> u64 {
    /// Tag for head occurrences in a variable's profile (no relation id
    /// collides with it).
    const HEAD_REL: u64 = u64::MAX;
    let mut occ: Vec<Vec<(u64, u64)>> = vec![Vec::new(); q.vars.len()];
    for atom in &q.atoms {
        for (col, t) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = t {
                occ[v.index()].push((u64::from(atom.relation.0), col as u64));
            }
        }
    }
    for (col, t) in q.head.iter().enumerate() {
        if let Term::Var(v) = t {
            occ[v.index()].push((HEAD_REL, col as u64));
        }
    }
    let var_sig: Vec<u64> = occ
        .into_iter()
        .map(|mut profile| {
            profile.sort_unstable();
            let mut h = FxHasher::default();
            profile.hash(&mut h);
            h.finish()
        })
        .collect();
    let hash_terms = |terms: &[Term], h: &mut FxHasher| {
        for t in terms {
            match t {
                Term::Var(v) => {
                    h.write_u8(0);
                    h.write_u64(var_sig[v.index()]);
                }
                Term::Const(c) => {
                    h.write_u8(1);
                    c.hash(h);
                }
            }
        }
    };
    let mut atom_hashes: Vec<u64> = q
        .atoms
        .iter()
        .map(|atom| {
            let mut h = FxHasher::default();
            atom.relation.0.hash(&mut h);
            hash_terms(&atom.terms, &mut h);
            h.finish()
        })
        .collect();
    atom_hashes.sort_unstable();
    let mut h = FxHasher::default();
    h.write_usize(q.atoms.len());
    h.write_usize(q.head.len());
    atom_hashes.hash(&mut h);
    hash_terms(&q.head, &mut h);
    h.finish()
}

/// The Chandra–Merlin core: the minimal Σ-free equivalent subquery
/// (unique up to isomorphism).
pub fn cm_core(
    q: &ConjunctiveQuery,
    catalog: &Catalog,
) -> Result<ConjunctiveQuery, ContainmentEngineError> {
    let sigma = DependencySet::new();
    Ok(minimize(q, &sigma, catalog, &ContainmentOptions::default())?.query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn renamed_queries_are_isomorphic() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y), R(y, x).
             Q2(u) :- R(u, w), R(w, u).",
        )
        .unwrap();
        assert!(is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap()
        ));
    }

    #[test]
    fn atom_order_irrelevant() {
        let p = parse_program(
            "relation R(a, b). relation S(a).
             Q1(x) :- R(x, y), S(y).
             Q2(x) :- S(z), R(x, z).",
        )
        .unwrap();
        assert!(is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap()
        ));
    }

    #[test]
    fn summary_must_align() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y).
             Q2(y2) :- R(x2, y2).",
        )
        .unwrap();
        assert!(!is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap()
        ));
    }

    #[test]
    fn repeated_vars_distinguish() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, x).
             Q2(x) :- R(x, y).",
        )
        .unwrap();
        assert!(!is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap()
        ));
    }

    #[test]
    fn bijection_required() {
        // Q1 folds two vars onto one in Q2's shape — hom exists both
        // directions? Here: R(x,y),R(x,z) vs R(u,v): different atom
        // counts, trivially non-isomorphic; with equal counts, a
        // non-injective map must be rejected.
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y), R(x, z).
             Q2(x) :- R(x, w), R(w, x).",
        )
        .unwrap();
        assert!(!is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap()
        ));
    }

    #[test]
    fn constants_must_match() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, 1).
             Q2(x) :- R(x, 2).
             Q3(x) :- R(x, 1).",
        )
        .unwrap();
        assert!(!is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap()
        ));
        assert!(is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q3").unwrap()
        ));
    }

    #[test]
    fn core_is_unique_up_to_isomorphism() {
        // Two syntactically different queries with the same core.
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y), R(x, z), R(x, w).
             Q2(x) :- R(x, u), R(x, v).",
        )
        .unwrap();
        let c1 = cm_core(p.query("Q1").unwrap(), &p.catalog).unwrap();
        let c2 = cm_core(p.query("Q2").unwrap(), &p.catalog).unwrap();
        assert_eq!(c1.num_atoms(), 1);
        assert!(is_isomorphic(&c1, &c2));
    }

    #[test]
    fn iso_key_invariant_under_renaming_and_reordering() {
        let p = parse_program(
            "relation R(a, b). relation S(a).
             Q1(x) :- R(x, y), S(y), R(y, x).
             Q2(u) :- S(w), R(w, u), R(u, w).
             Q3(x) :- R(x, y), S(x), R(y, x).",
        )
        .unwrap();
        // Q2 is Q1 renamed + reordered; Q3 differs (S applied to the DV).
        assert_eq!(
            iso_key(p.query("Q1").unwrap()),
            iso_key(p.query("Q2").unwrap())
        );
        assert_ne!(
            iso_key(p.query("Q1").unwrap()),
            iso_key(p.query("Q3").unwrap())
        );
        assert!(is_isomorphic(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap()
        ));
    }

    #[test]
    fn iso_key_distinguishes_heads_and_constants() {
        let p = parse_program(
            "relation R(a, b).
             Q1(x) :- R(x, y).
             Q2(y2) :- R(x2, y2).
             Q3(x) :- R(x, 1).
             Q4(x) :- R(x, 2).",
        )
        .unwrap();
        let keys: Vec<u64> = p.queries.iter().map(iso_key).collect();
        assert_ne!(keys[0], keys[1], "head position matters");
        assert_ne!(keys[2], keys[3], "constant values matter");
        assert_ne!(keys[0], keys[2], "const vs var matters");
    }

    #[test]
    fn core_of_rigid_query_is_itself() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y), R(y, x).",
        )
        .unwrap();
        let c = cm_core(p.query("Q").unwrap(), &p.catalog).unwrap();
        assert_eq!(c.num_atoms(), 2);
        assert!(is_isomorphic(&c, p.query("Q").unwrap()));
    }
}
