//! Deciding `Σ ⊨ Q ⊆∞ Q′` — the paper's Theorems 1 and 2 made effective.
//!
//! **Theorem 1.** `Σ ⊨ Q ⊆∞ Q′` iff there is a query homomorphism from
//! `Q′` to `chase_Σ(Q)` (O- or R-chase). The chase may be infinite, so
//! this alone is only semi-decidable.
//!
//! **Theorem 2.** When Σ consists of INDs only, or is key-based, a
//! witness homomorphism (if any) lands within chase level
//! `|Q′| · |Σ| · (W+1)^W`. We therefore expand the chase level by level
//! (iterative deepening — positive answers return as early as possible)
//! and declare non-containment once the bound is fully explored.
//!
//! For Σ = ∅ this degenerates to the Chandra–Merlin homomorphism test;
//! for FDs-only, to the classical finite chase of Aho–Sagiv–Ullman /
//! Maier–Mendelzon–Sagiv. For mixed non-key-based sets (open in the
//! paper; the inference problem is undecidable, Mitchell 1983) the engine
//! is a sound *semi-decision*: positive answers are exact, negative
//! answers within a finite budget are flagged `exact = false`.

use cqchase_index::{CancelToken, FxHashMap};
use cqchase_ir::{validate, Catalog, ConjunctiveQuery, DependencySet, IrError};

use crate::chase::{theorem2_bound, Chase, ChaseBudget, ChaseMode, ChaseStatus};
use crate::classify::{classify, SigmaClass};
use crate::hom::{ChaseHomFinder, Homomorphism};

/// Options for one containment test.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContainmentOptions {
    /// Chase discipline override (`None`: the paper's choice for the
    /// class — O-chase for INDs-only, R-chase otherwise).
    pub mode: Option<ChaseMode>,
    /// Chase resource limits.
    pub budget: ChaseBudgetOpt,
}

/// Budget wrapper so `ContainmentOptions` can derive `Default`.
///
/// The default is deliberately smaller than [`ChaseBudget::default`]:
/// the containment loop performs a homomorphism search per chase level,
/// so unbounded Mixed-class chases (which grow forever) must cut off
/// after a few thousand steps rather than a million. Raise it explicitly
/// for deep certified instances.
#[derive(Debug, Clone, Copy)]
pub struct ChaseBudgetOpt(pub ChaseBudget);

/// Default step cap for containment-driven chases. Each level of an
/// unbounded Mixed-class chase triggers a homomorphism search, so this
/// is orders of magnitude below
/// [`DEFAULT_MAX_STEPS`](crate::chase::DEFAULT_MAX_STEPS).
pub const CONTAINMENT_MAX_STEPS: usize = 4_000;

/// Default conjunct cap for containment-driven chases (the hom-search
/// target's size; see [`CONTAINMENT_MAX_STEPS`]).
pub const CONTAINMENT_MAX_CONJUNCTS: usize = 20_000;

impl Default for ChaseBudgetOpt {
    fn default() -> Self {
        ChaseBudgetOpt(ChaseBudget {
            max_steps: CONTAINMENT_MAX_STEPS,
            max_conjuncts: CONTAINMENT_MAX_CONJUNCTS,
        })
    }
}

/// The outcome of a containment test.
#[derive(Debug, Clone)]
pub struct ContainmentAnswer {
    /// Whether `Σ ⊨ Q ⊆∞ Q′` (see `exact` for the caveat).
    pub contained: bool,
    /// `true` when the answer is certified: positives always are;
    /// negatives are certified when the class admits the Theorem 2 bound
    /// and it was fully explored (or the chase completed). A `false` here
    /// only happens for [`SigmaClass::Mixed`] negatives cut off by the
    /// budget.
    pub exact: bool,
    /// The witness homomorphism `Q′ → chase_Σ(Q)` for positive answers.
    /// `None` for positives that hold vacuously (the chase failed on an
    /// FD constant clash, so `Q` is empty on every Σ-database).
    pub witness: Option<Homomorphism>,
    /// Whether the chase failed (vacuous containment).
    pub empty_chase: bool,
    /// The classification that selected the procedure.
    pub class: SigmaClass,
    /// The Theorem 2 level bound used (0 when not applicable).
    pub bound: u32,
    /// Highest chase level actually materialized.
    pub levels_explored: u32,
    /// Live conjuncts in the final (partial) chase.
    pub chase_conjuncts: usize,
    /// IND scheduling steps taken by the chase.
    pub chase_steps: usize,
}

/// Ways a containment test can fail to produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentEngineError {
    /// Malformed input (e.g. output arity mismatch).
    Ir(IrError),
    /// A certified class ran out of budget before exploring the bound —
    /// raise [`ContainmentOptions::budget`] to decide this instance.
    BudgetExhausted {
        /// The Theorem 2 bound that had to be explored.
        bound: u32,
        /// How far the chase got.
        levels_explored: u32,
        /// Chase size when the budget ran out.
        chase_conjuncts: usize,
    },
    /// The request's [`CancelToken`] fired (deadline exceeded or
    /// explicit cancellation) before an answer was reached. Carries
    /// partial-progress counters; no partial answer is produced and no
    /// shared state is corrupted.
    Cancelled {
        /// Highest chase level materialized before the stop.
        levels_explored: u32,
        /// Chase size at the stop.
        chase_conjuncts: usize,
        /// IND scheduling steps taken before the stop.
        chase_steps: usize,
    },
}

impl std::fmt::Display for ContainmentEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainmentEngineError::Ir(e) => write!(f, "invalid input: {e}"),
            ContainmentEngineError::BudgetExhausted {
                bound,
                levels_explored,
                chase_conjuncts,
            } => write!(
                f,
                "chase budget exhausted at level {levels_explored} of {bound} ({chase_conjuncts} conjuncts)"
            ),
            ContainmentEngineError::Cancelled {
                levels_explored,
                chase_conjuncts,
                chase_steps,
            } => write!(
                f,
                "cancelled at level {levels_explored} ({chase_conjuncts} conjuncts, {chase_steps} steps)"
            ),
        }
    }
}

impl std::error::Error for ContainmentEngineError {}

impl From<IrError> for ContainmentEngineError {
    fn from(e: IrError) -> Self {
        ContainmentEngineError::Ir(e)
    }
}

fn answer(
    contained: bool,
    exact: bool,
    witness: Option<Homomorphism>,
    empty_chase: bool,
    class: SigmaClass,
    bound: u32,
    chase: &Chase,
) -> ContainmentAnswer {
    ContainmentAnswer {
        contained,
        exact,
        witness,
        empty_chase,
        class,
        bound,
        levels_explored: chase.state().max_level().unwrap_or(0),
        chase_conjuncts: chase.state().num_alive(),
        chase_steps: chase.steps(),
    }
}

/// Tests `Σ ⊨ Q ⊆∞ Q′`.
///
/// See the module docs for the per-class algorithm and the meaning of
/// [`ContainmentAnswer::exact`].
///
/// ```
/// use cqchase_core::{contained, ContainmentOptions};
/// use cqchase_ir::parse_program;
///
/// let p = parse_program(
///     "relation EMP(eno, sal, dept).
///      relation DEP(dno, loc).
///      ind EMP[dept] <= DEP[dno].
///      Q1(e) :- EMP(e, s, d), DEP(d, l).
///      Q2(e) :- EMP(e, s, d).",
/// ).unwrap();
/// let ans = contained(
///     p.query("Q2").unwrap(), p.query("Q1").unwrap(),
///     &p.deps, &p.catalog, &ContainmentOptions::default(),
/// ).unwrap();
/// assert!(ans.contained && ans.exact);
/// ```
pub fn contained(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentEngineError> {
    contained_with_cancel(q, q_prime, sigma, catalog, opts, &CancelToken::unlimited())
}

/// [`contained`] under a [`CancelToken`]: the chase driver checks the
/// token between scheduling steps and the homomorphism searches at
/// coalesced candidate intervals, so a fired token surfaces as
/// [`ContainmentEngineError::Cancelled`] (with partial-progress
/// counters) in bounded time. A cancelled probe never certifies a
/// negative; positives found before the stop are still returned.
pub fn contained_with_cancel(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
    cancel: &CancelToken,
) -> Result<ContainmentAnswer, ContainmentEngineError> {
    validate::validate_comparable(q, q_prime)?;
    let class = classify(sigma, catalog);
    let mode = opts.mode.unwrap_or_else(|| class.preferred_mode());
    let mut chase = Chase::new(q, sigma, catalog, mode);
    contained_against(&mut chase, q_prime, sigma, class, opts, cancel)
}

/// The containment loop against an already-initialized (possibly
/// already-expanded) chase of `Q`. Factored out of [`contained`] so the
/// batch engine can run several `Q′` against one shared chase.
fn contained_against(
    chase: &mut Chase,
    q_prime: &ConjunctiveQuery,
    sigma: &DependencySet,
    class: SigmaClass,
    opts: &ContainmentOptions,
    cancel: &CancelToken,
) -> Result<ContainmentAnswer, ContainmentEngineError> {
    let budget = opts.budget.0;
    let certified = class.bound_is_certified();
    let bound = if certified {
        match class {
            SigmaClass::Empty => 0,
            SigmaClass::FdsOnly => 0,
            _ => theorem2_bound(q_prime, sigma),
        }
    } else {
        u32::MAX
    };

    if chase.state().is_failed() {
        // Q is unsatisfiable w.r.t. Σ: contained in everything.
        return Ok(answer(true, true, None, true, class, bound, chase));
    }

    // One finder for the whole loop: `Q′` is compiled against the chase
    // once (the plan stays valid as the chase grows — constants are all
    // interned at initialization) and the join scratch is reused, so the
    // per-level recheck allocates nothing beyond the witness itself.
    let mut finder = ChaseHomFinder::new(q_prime);

    // Thread the stop signal into both halves of the loop. On a shared
    // chase (batch mode) this replaces the previous pair's token, so a
    // cancelled pair never poisons its successors.
    chase.set_cancel(cancel.clone());
    finder.set_cancel(cancel.clone());
    let cancelled = |chase: &Chase| ContainmentEngineError::Cancelled {
        levels_explored: chase.state().max_level().unwrap_or(0),
        chase_conjuncts: chase.state().num_alive(),
        chase_steps: chase.steps(),
    };

    // Iterative deepening over levels 0, 1, …, bound. Early levels are
    // checked one by one (cheap, returns positives as soon as possible);
    // past level 32 the homomorphism search runs every 8 levels — each
    // check rebuilds a target of the chase's size, so per-level checking
    // would make deep negatives quadratic in the chase.
    let mut level: u32 = 0;
    loop {
        let status = chase.expand_to_level(level, budget);
        match status {
            ChaseStatus::Failed => {
                return Ok(answer(true, true, None, true, class, bound, chase));
            }
            ChaseStatus::Complete => {
                // Finite chase: Theorem 1 decides outright.
                let h = finder.find(chase.state(), u32::MAX);
                if h.is_none() && finder.cancelled() {
                    return Err(cancelled(chase));
                }
                let found = h.is_some();
                return Ok(answer(found, true, h, false, class, bound, chase));
            }
            ChaseStatus::LevelReached => {
                let check = level <= 32 || level.is_multiple_of(8) || level >= bound;
                if check {
                    match finder.find(chase.state(), level) {
                        Some(h) => {
                            return Ok(answer(true, true, Some(h), false, class, bound, chase));
                        }
                        // A cut-short probe must not count as "no hom
                        // at this level".
                        None if finder.cancelled() => return Err(cancelled(chase)),
                        None => {}
                    }
                }
                if level >= bound {
                    // Bound fully explored without a witness.
                    return Ok(answer(false, certified, None, false, class, bound, chase));
                }
                level += 1;
            }
            ChaseStatus::BudgetExhausted => {
                // One last look at whatever was built.
                if let Some(h) = finder.find(chase.state(), u32::MAX) {
                    return Ok(answer(true, true, Some(h), false, class, bound, chase));
                }
                if finder.cancelled() {
                    return Err(cancelled(chase));
                }
                if certified {
                    return Err(ContainmentEngineError::BudgetExhausted {
                        bound,
                        levels_explored: chase.state().max_level().unwrap_or(0),
                        chase_conjuncts: chase.state().num_alive(),
                    });
                }
                // Mixed semi-decision: inconclusive negative.
                return Ok(answer(false, false, None, false, class, bound, chase));
            }
            ChaseStatus::Cancelled => return Err(cancelled(chase)),
        }
    }
}

/// One containment test of a batch: indices into the batch's query
/// slice, `Σ ⊨ queries[q] ⊆∞ queries[q_prime]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainmentPair {
    /// Index of the contained-side query `Q`.
    pub q: usize,
    /// Index of the containing-side query `Q′`.
    pub q_prime: usize,
}

/// Tests a batch of containments over one dependency set, sequentially.
///
/// Semantically this is exactly `pairs.map(|p| contained(..))` — the
/// differential property tests hold the batch engine to that — but the
/// batch layout lets shared work be shared:
///
/// * pairs with the same left query reuse one chase when Σ has only one
///   kind of dependency (INDs-only / FDs-only / empty — the common
///   classes). Such chases grow monotonically (no FD merge can restage
///   IND-created conjuncts or vice versa), so a deeper-than-needed chase
///   presents level-for-level identical views to every `Q′`;
/// * each containment run compiles its `Q′` once and reuses join
///   scratch across levels (see [`ChaseHomFinder`]).
///
/// When Σ mixes FDs and INDs, each pair gets a fresh chase: later FD
/// merges can reshape low levels, so view equality across pairs would
/// not be exact. Answers agree with [`contained`] in every decision
/// field (`contained`, `exact`, `empty_chase`, `class`, `bound`, and
/// witness *existence*). The witness itself is a certificate, not a
/// canonical value: a shared chase that already completed is searched
/// whole where a fresh chase is searched level by level, so the two
/// runs can return different (equally valid) homomorphisms. The
/// chase-size diagnostics (`levels_explored`, `chase_conjuncts`,
/// `chase_steps`) likewise describe the possibly-shared chase.
///
/// This is the sequential reference engine; `cqchase-par` runs the same
/// computation across worker threads.
pub fn check_batch(
    queries: &[ConjunctiveQuery],
    pairs: &[ContainmentPair],
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
) -> Vec<Result<ContainmentAnswer, ContainmentEngineError>> {
    check_batch_cancellable(queries, pairs, sigma, catalog, opts, None)
}

/// [`check_batch`] with an optional per-pair [`CancelToken`] slice
/// (aligned with `pairs`; `None` runs every pair to completion).
///
/// A fired token turns that pair's answer into
/// [`ContainmentEngineError::Cancelled`] without disturbing the rest of
/// the batch: on a shared chase the stop lands between scheduling
/// steps, leaving a consistent partial chase that the next pair's token
/// re-arms and resumes.
pub fn check_batch_cancellable(
    queries: &[ConjunctiveQuery],
    pairs: &[ContainmentPair],
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
    cancels: Option<&[CancelToken]>,
) -> Vec<Result<ContainmentAnswer, ContainmentEngineError>> {
    if let Some(c) = cancels {
        assert_eq!(c.len(), pairs.len(), "one cancel token per pair");
    }
    let class = classify(sigma, catalog);
    let mode = opts.mode.unwrap_or_else(|| class.preferred_mode());
    let share_chases = sigma.fds().next().is_none() || sigma.inds().next().is_none();
    let mut chases: FxHashMap<usize, Chase> = FxHashMap::default();
    let unlimited = CancelToken::unlimited();
    pairs
        .iter()
        .enumerate()
        .map(|(i, &ContainmentPair { q: qi, q_prime })| {
            let cancel = cancels.map_or(&unlimited, |c| &c[i]);
            let (q, qp) = (&queries[qi], &queries[q_prime]);
            validate::validate_comparable(q, qp)?;
            if share_chases {
                let chase = chases
                    .entry(qi)
                    .or_insert_with(|| Chase::new(q, sigma, catalog, mode));
                contained_against(chase, qp, sigma, class.clone(), opts, cancel)
            } else {
                let mut chase = Chase::new(q, sigma, catalog, mode);
                contained_against(&mut chase, qp, sigma, class.clone(), opts, cancel)
            }
        })
        .collect()
}

/// The outcome of an equivalence test: both containment answers.
#[derive(Debug, Clone)]
pub struct EquivalenceAnswer {
    /// `Σ ⊨ Q ⊆∞ Q′`.
    pub forward: ContainmentAnswer,
    /// `Σ ⊨ Q′ ⊆∞ Q` (only computed when `forward` holds; otherwise a
    /// copy of the failed direction is *not* present and this is `None`).
    pub backward: Option<ContainmentAnswer>,
}

impl EquivalenceAnswer {
    /// Whether the queries are equivalent under Σ.
    pub fn equivalent(&self) -> bool {
        self.forward.contained && self.backward.as_ref().map(|b| b.contained).unwrap_or(false)
    }

    /// Whether both directions are certified.
    pub fn exact(&self) -> bool {
        self.forward.exact && self.backward.as_ref().map(|b| b.exact).unwrap_or(true)
    }
}

/// Tests `Σ ⊨ Q ≡∞ Q′` (both containments; the second is skipped if the
/// first already fails).
pub fn equivalent(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    opts: &ContainmentOptions,
) -> Result<EquivalenceAnswer, ContainmentEngineError> {
    let forward = contained(q, q_prime, sigma, catalog, opts)?;
    if !forward.contained {
        return Ok(EquivalenceAnswer {
            forward,
            backward: None,
        });
    }
    let backward = contained(q_prime, q, sigma, catalog, opts)?;
    Ok(EquivalenceAnswer {
        forward,
        backward: Some(backward),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    fn test_contained(src: &str, q: &str, qp: &str) -> ContainmentAnswer {
        let p = parse_program(src).unwrap();
        contained(
            p.query(q).unwrap(),
            p.query(qp).unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap()
    }

    const INTRO: &str = "
        relation EMP(eno, sal, dept). relation DEP(dno, loc).
        ind EMP[dept] <= DEP[dno].
        Q1(e) :- EMP(e, s, d), DEP(d, l).
        Q2(e) :- EMP(e, s, d).
    ";

    #[test]
    fn intro_example_equivalence_under_ind() {
        // With the IND, Q2 ⊆ Q1 (the chase supplies the DEP conjunct) and
        // Q1 ⊆ Q2 trivially — the paper's opening example.
        let fwd = test_contained(INTRO, "Q2", "Q1");
        assert!(fwd.contained && fwd.exact);
        assert!(fwd.witness.is_some());
        let bwd = test_contained(INTRO, "Q1", "Q2");
        assert!(bwd.contained && bwd.exact);
    }

    #[test]
    fn intro_example_fails_without_ind() {
        let src = "
            relation EMP(eno, sal, dept). relation DEP(dno, loc).
            Q1(e) :- EMP(e, s, d), DEP(d, l).
            Q2(e) :- EMP(e, s, d).
        ";
        let fwd = test_contained(src, "Q2", "Q1");
        assert!(!fwd.contained);
        assert!(fwd.exact);
        assert_eq!(fwd.class, SigmaClass::Empty);
        let bwd = test_contained(src, "Q1", "Q2");
        assert!(bwd.contained);
    }

    #[test]
    fn equivalence_wrapper() {
        let p = parse_program(INTRO).unwrap();
        let eq = equivalent(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap();
        assert!(eq.equivalent());
        assert!(eq.exact());
    }

    #[test]
    fn chandra_merlin_no_deps() {
        let a = test_contained(
            "relation R(a, b).
             Q(x) :- R(x, y), R(y, z).
             Qp(x) :- R(x, y).",
            "Q",
            "Qp",
        );
        assert!(a.contained && a.exact);
        assert_eq!(a.bound, 0);
        assert_eq!(a.levels_explored, 0);
    }

    #[test]
    fn fd_only_containment() {
        // With R: a -> b, Q(x) :- R(x,y), R(x,z) collapses to one conjunct,
        // so Q ≡ Qp.
        let a = test_contained(
            "relation R(a, b).
             fd R: a -> b.
             Q(x) :- R(x, y), R(x, z).
             Qp(x) :- R(x, w).",
            "Q",
            "Qp",
        );
        assert!(a.contained);
        // And Qp ⊆ Q also holds *with* the FD (both atoms map to R(x,w)).
        let b = test_contained(
            "relation R(a, b).
             fd R: a -> b.
             Q(x) :- R(x, y), R(x, z).
             Qp(x) :- R(x, w).",
            "Qp",
            "Q",
        );
        assert!(b.contained);
    }

    #[test]
    fn fd_clash_gives_vacuous_containment() {
        let a = test_contained(
            "relation R(a, b). relation S(a).
             fd R: a -> b.
             Q(x) :- R(x, 1), R(x, 2).
             Qp(x) :- S(x).",
            "Q",
            "Qp",
        );
        assert!(a.contained && a.exact && a.empty_chase);
        assert!(a.witness.is_none());
    }

    #[test]
    fn inds_only_positive_needs_chase_depth() {
        // Cyclic IND: Q(x) :- R(x, y) is contained in the 3-chain query
        // because the chase unfolds R(y, n1), R(n1, n2).
        let a = test_contained(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(x, y), R(y, z), R(z, w).",
            "Q",
            "Qp",
        );
        assert!(a.contained && a.exact);
        let w = a.witness.unwrap();
        assert_eq!(w.max_level, 2);
        assert!(matches!(a.class, SigmaClass::IndsOnly { width: 1 }));
    }

    #[test]
    fn inds_only_negative_certified_by_bound() {
        // Q(x) :- R(x, y) vs Q'(x) :- R(y, x): the chase of Q never
        // creates a conjunct with x in the second column.
        let a = test_contained(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(y, x).",
            "Q",
            "Qp",
        );
        assert!(!a.contained);
        assert!(a.exact, "negative must be certified for INDs-only");
        // Bound explored: |Q'| · |Σ| · (W+1)^W = 1 · 1 · 2 = 2.
        assert_eq!(a.bound, 2);
        assert!(a.levels_explored >= 2);
    }

    #[test]
    fn key_based_positive() {
        let a = test_contained(
            "relation EMP(eno, sal, dept). relation DEP(dno, loc).
             fd EMP: eno -> sal. fd EMP: eno -> dept. fd DEP: dno -> loc.
             ind EMP[dept] <= DEP[dno].
             Q2(e) :- EMP(e, s, d).
             Q1(e) :- EMP(e, s, d), DEP(d, l).",
            "Q2",
            "Q1",
        );
        assert!(a.contained && a.exact);
        assert!(matches!(a.class, SigmaClass::KeyBased { .. }));
    }

    #[test]
    fn key_based_fd_interaction() {
        // Key-based FDs merge the two EMP atoms (same key value), making
        // Q ⊆ Qp for a Qp requiring consistent attributes.
        let a = test_contained(
            "relation EMP(eno, sal, dept).
             fd EMP: eno -> sal. fd EMP: eno -> dept.
             Q(e) :- EMP(e, s, d), EMP(e, s2, d2).
             Qp(e) :- EMP(e, s3, d3).",
            "Q",
            "Qp",
        );
        assert!(a.contained);
    }

    #[test]
    fn mixed_positive_is_exact() {
        // Section 4's Σ is Mixed. Q2 ⊆ Q1 still verifiable positively:
        // hom Q1 → chase(Q2)... here test the trivial direction.
        let a = test_contained(
            "relation R(a, b).
             fd R: b -> a. ind R[2] <= R[1].
             Q2(x) :- R(x, y), R(yp, x).
             Q1(x) :- R(x, y).",
            "Q2",
            "Q1",
        );
        assert!(a.contained && a.exact);
        assert_eq!(a.class, SigmaClass::Mixed);
    }

    #[test]
    fn mixed_negative_is_inexact() {
        // The paper's finite counterexample: Σ ⊨ Q1 ⊆f Q2 holds finitely
        // but NOT infinitely — the chase-based engine must keep saying
        // "no hom" and, being Mixed, flags the negative as inexact.
        let p = parse_program(
            "relation R(a, b).
             fd R: b -> a. ind R[2] <= R[1].
             Q1(x) :- R(x, y).
             Q2(x) :- R(x, y), R(yp, x).",
        )
        .unwrap();
        let opts = ContainmentOptions {
            budget: ChaseBudgetOpt(ChaseBudget {
                max_steps: 500,
                max_conjuncts: 500,
            }),
            ..Default::default()
        };
        let a = contained(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap(),
            &p.deps,
            &p.catalog,
            &opts,
        )
        .unwrap();
        assert!(!a.contained);
        assert!(!a.exact, "Mixed negatives are semi-decisions");
    }

    #[test]
    fn certified_budget_exhaustion_is_error() {
        // INDs-only with a wide cyclic IND family explodes; a tiny budget
        // must surface as an error, not a wrong negative.
        let p = parse_program(
            "relation R(a, b, c).
             ind R[2, 3] <= R[1, 2]. ind R[3, 1] <= R[1, 2].
             Q(x) :- R(x, y, z).
             Qp(x) :- R(x, u, v), R(u, v, w), R(v, w, t), R(w, t, s).",
        )
        .unwrap();
        let opts = ContainmentOptions {
            budget: ChaseBudgetOpt(ChaseBudget {
                max_steps: 5,
                max_conjuncts: 5,
            }),
            ..Default::default()
        };
        let r = contained(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            &opts,
        );
        assert!(matches!(
            r,
            Err(ContainmentEngineError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn cancelled_check_is_error_not_negative() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(y, x).",
        )
        .unwrap();
        let token = CancelToken::unlimited();
        token.cancel();
        let r = contained_with_cancel(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
            &token,
        );
        assert!(matches!(r, Err(ContainmentEngineError::Cancelled { .. })));
    }

    #[test]
    fn cancelled_pair_does_not_poison_shared_chase() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(x, y), R(y, z).",
        )
        .unwrap();
        let pairs = vec![
            ContainmentPair { q: 0, q_prime: 1 },
            ContainmentPair { q: 0, q_prime: 1 },
        ];
        let fired = CancelToken::unlimited();
        fired.cancel();
        let cancels = vec![fired, CancelToken::unlimited()];
        let opts = ContainmentOptions::default();
        let out = check_batch_cancellable(
            &p.queries,
            &pairs,
            &p.deps,
            &p.catalog,
            &opts,
            Some(&cancels),
        );
        assert!(matches!(
            out[0],
            Err(ContainmentEngineError::Cancelled { .. })
        ));
        // The second pair resumes the shared chase and gets the same
        // decision as a standalone run.
        let standalone =
            contained(&p.queries[0], &p.queries[1], &p.deps, &p.catalog, &opts).unwrap();
        let b = out[1].as_ref().unwrap();
        assert_eq!(b.contained, standalone.contained);
        assert_eq!(b.exact, standalone.exact);
        assert!(b.contained);
    }

    #[test]
    fn output_arity_mismatch_rejected() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y).
             Qp(x, y2) :- R(x, y2).",
        )
        .unwrap();
        let r = contained(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            &ContainmentOptions::default(),
        );
        assert!(matches!(r, Err(ContainmentEngineError::Ir(_))));
    }

    #[test]
    fn containment_is_reflexive_and_transitive_sample() {
        let src = "
            relation R(a, b).
            ind R[2] <= R[1].
            A(x) :- R(x, y).
            B(x) :- R(x, y), R(y, z).
            C(x) :- R(x, y), R(y, z), R(z, w).
        ";
        for q in ["A", "B", "C"] {
            let a = test_contained(src, q, q);
            assert!(a.contained, "reflexivity for {q}");
        }
        // A ⊆ B ⊆ C and A ⊆ C (chase unfolds the chain).
        assert!(test_contained(src, "A", "B").contained);
        assert!(test_contained(src, "B", "C").contained);
        assert!(test_contained(src, "A", "C").contained);
        // Longer chains are contained in shorter ones trivially.
        assert!(test_contained(src, "C", "A").contained);
    }

    #[test]
    fn deep_witness_beyond_check_stride_is_found() {
        // The hom search runs every 8 levels past level 32; a witness
        // that only appears at level 35 must still be found (at the
        // level-40 check, whose target contains all shallower levels).
        let mut src =
            String::from("relation R(a, b). ind R[2] <= R[1].\nQ(x) :- R(x, y).\nQp(v0) :- ");
        let n = 36;
        for i in 0..n {
            if i > 0 {
                src.push_str(", ");
            }
            src.push_str(&format!("R(v{i}, v{})", i + 1));
        }
        src.push('.');
        let p = parse_program(&src).unwrap();
        let opts = ContainmentOptions {
            budget: ChaseBudgetOpt(ChaseBudget {
                max_steps: 10_000,
                max_conjuncts: 10_000,
            }),
            ..Default::default()
        };
        let a = contained(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            &opts,
        )
        .unwrap();
        assert!(a.contained, "deep chain must be found despite the stride");
        assert_eq!(a.witness.unwrap().max_level, 35);
    }

    #[test]
    fn oblivious_and_required_agree() {
        let p = parse_program(
            "relation R(a, b). relation S(x, y).
             ind R[2] <= S[1]. ind S[2] <= R[1].
             Q(x) :- R(x, y).
             Qp(x) :- R(x, y), S(y, z), R(z, w).",
        )
        .unwrap();
        for mode in [ChaseMode::Oblivious, ChaseMode::Required] {
            let opts = ContainmentOptions {
                mode: Some(mode),
                ..Default::default()
            };
            let a = contained(
                p.query("Q").unwrap(),
                p.query("Qp").unwrap(),
                &p.deps,
                &p.catalog,
                &opts,
            )
            .unwrap();
            assert!(a.contained, "{mode:?}");
        }
    }
}
