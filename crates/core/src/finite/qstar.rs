//! The `Q*` closing-off construction of Theorem 3 (connected case).
//!
//! To show finite controllability, the paper builds a **finite** query
//! `Q*` that (a) contains `Q` (via the trivial homomorphism), (b) obeys
//! Σ when viewed as a database, and (c) agrees with the real chase on its
//! first `(d+1)·k_Σ` levels, where `d` bounds the diameter of the
//! query-graph of `Q′` and `k_Σ` bounds symbol travel between levels:
//!
//! > *Construct the first `(d+1)k_Σ` levels of `chase_Σ(Q)`. Then choose
//! > a new special symbol `z_A` for each attribute `A` and modify the
//! > chase rule for INDs so that whenever a conjunct is created at a
//! > level exceeding `(d+1)k_Σ`, the entry in each column that would
//! > normally receive a new NDV is the special symbol `z_A` … the chase
//! > procedure will terminate.*
//!
//! Any summary-preserving homomorphism `Q′ → Q*` must then land inside
//! the untruncated prefix, hence lifts to `chase_Σ(Q)` — so finite
//! containment implies unrestricted containment.
//!
//! We key the special symbols by *(relation, column)* — a refinement of
//! per-attribute symbols that is at least as discriminating, so the
//! termination and locality arguments carry over unchanged.

use std::collections::VecDeque;

use cqchase_index::{FxHashMap, FxHashSet};

use cqchase_ir::{Catalog, ConjunctiveQuery, Constant, DependencySet, Ind, RelId};
use cqchase_storage::{Database, Value};

use crate::chase::{CTerm, Chase, ChaseBudget, ChaseMode, ChaseStatus};
use crate::finite::ksigma::k_sigma;
use crate::hom::{HomTarget, TSym, TargetRow};

/// A term of `Q*`: an original chase symbol, a per-(relation, column)
/// special symbol, or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QsTerm {
    /// A constant carried over from the query.
    Const(Constant),
    /// A chase symbol of the truncated prefix (by ordinal).
    Sym(u32),
    /// The special symbol `z_(rel, col)` used to close the structure off.
    Special(RelId, u32),
}

/// The finite closing-off of a chase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QStar {
    /// Every conjunct (prefix of the real chase + closing-off tuples).
    pub conjuncts: Vec<(RelId, Vec<QsTerm>)>,
    /// The summary row (always within the prefix).
    pub summary: Vec<QsTerm>,
    /// Number of conjuncts belonging to the untruncated chase prefix.
    pub prefix_len: usize,
    /// The cut level `(d+1)·k_Σ`.
    pub cutoff: u32,
    /// The travel constant used.
    pub k_sigma: u32,
    /// Whether the closing-off fixpoint completed within budget.
    pub complete: bool,
}

/// Why `Q*` could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QStarError {
    /// Σ is in neither Theorem 3 class (no `k_Σ`).
    NoKSigma,
    /// The chase prefix alone exceeded the budget.
    PrefixBudget,
    /// The chase failed (FD constant clash): `Q` is empty under Σ and
    /// every containment holds vacuously — no `Q*` is needed.
    EmptyChase,
}

/// The diameter (longest shortest path) of the query graph `G_{Q′}`:
/// vertices are conjuncts plus the summary row, edges join parts sharing
/// a symbol. Disconnected pairs are skipped (the paper handles components
/// separately); returns the max component diameter.
pub fn query_graph_diameter(q: &ConjunctiveQuery) -> u32 {
    // Node 0 = summary row; nodes 1.. = atoms.
    let n = q.atoms.len() + 1;
    let mut vars_of: Vec<FxHashSet<u32>> = Vec::with_capacity(n);
    vars_of.push(
        q.head
            .iter()
            .filter_map(|t| t.as_var())
            .map(|v| v.0)
            .collect(),
    );
    for a in &q.atoms {
        vars_of.push(a.vars().map(|v| v.0).collect());
    }
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && !vars_of[i].is_disjoint(&vars_of[j]))
                .collect()
        })
        .collect();
    let mut diameter = 0u32;
    for s in 0..n {
        // BFS.
        let mut dist = vec![u32::MAX; n];
        dist[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        for &d in &dist {
            if d != u32::MAX {
                diameter = diameter.max(d);
            }
        }
    }
    diameter
}

fn cterm_to_qs(t: &CTerm) -> QsTerm {
    match t {
        CTerm::Const(c) => QsTerm::Const(c.clone()),
        CTerm::Var(v) => QsTerm::Sym(v.0),
    }
}

/// Builds `Q*` for `q` under Σ, with `d` the diameter bound for the
/// query `Q′` the caller intends to test (use
/// [`query_graph_diameter`]`(q_prime)`).
pub fn build_qstar(
    q: &ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    d: u32,
    budget: ChaseBudget,
) -> Result<QStar, QStarError> {
    let k = k_sigma(sigma, catalog).ok_or(QStarError::NoKSigma)?;
    let cutoff = (d + 1).saturating_mul(k.max(1));
    let mut chase = Chase::new(q, sigma, catalog, ChaseMode::Required);
    let status = chase.expand_to_level(cutoff, budget);
    match status {
        ChaseStatus::Failed => return Err(QStarError::EmptyChase),
        // No cancel token is installed here, but a cut-short prefix is
        // a budget problem either way.
        ChaseStatus::BudgetExhausted | ChaseStatus::Cancelled => {
            return Err(QStarError::PrefixBudget)
        }
        ChaseStatus::Complete | ChaseStatus::LevelReached => {}
    }
    let state = chase.state();
    let mut conjuncts: Vec<(RelId, Vec<QsTerm>)> = Vec::new();
    let mut seen: FxHashSet<(RelId, Vec<QsTerm>)> = FxHashSet::default();
    for (_, c) in state.alive_conjuncts() {
        let row = (c.rel, c.terms.iter().map(cterm_to_qs).collect::<Vec<_>>());
        if seen.insert(row.clone()) {
            conjuncts.push(row);
        }
    }
    let prefix_len = conjuncts.len();
    let summary: Vec<QsTerm> = state.summary().iter().map(cterm_to_qs).collect();

    if status == ChaseStatus::Complete {
        // The real chase is finite: Q* is simply the whole chase.
        return Ok(QStar {
            conjuncts,
            summary,
            prefix_len,
            cutoff,
            k_sigma: k,
            complete: true,
        });
    }

    // Closing-off fixpoint: required-mode IND applications whose fresh
    // entries are the special symbols. The symbol universe is finite, so
    // this terminates; the budget is a safety net.
    let inds: Vec<Ind> = sigma.inds().cloned().collect();
    let mut witness: FxHashMap<(usize, Vec<QsTerm>), ()> = FxHashMap::default();
    let project = |terms: &[QsTerm], cols: &[usize]| -> Vec<QsTerm> {
        cols.iter().map(|&c| terms[c].clone()).collect()
    };
    let register = |row: &(RelId, Vec<QsTerm>),
                    witness: &mut FxHashMap<(usize, Vec<QsTerm>), ()>| {
        for (i, ind) in inds.iter().enumerate() {
            if ind.rhs_rel == row.0 {
                witness.insert((i, project(&row.1, &ind.rhs_cols)), ());
            }
        }
    };
    for row in &conjuncts {
        register(row, &mut witness);
    }
    let mut queue: VecDeque<usize> = (0..conjuncts.len()).collect();
    let mut steps = 0usize;
    let mut complete = true;
    'outer: while let Some(i) = queue.pop_front() {
        let (rel, terms) = conjuncts[i].clone();
        for (ind_idx, ind) in inds.iter().enumerate() {
            if ind.lhs_rel != rel {
                continue;
            }
            steps += 1;
            if steps > budget.max_steps || conjuncts.len() > budget.max_conjuncts {
                complete = false;
                break 'outer;
            }
            let key = (ind_idx, project(&terms, &ind.lhs_cols));
            if witness.contains_key(&key) {
                continue;
            }
            let arity = catalog.arity(ind.rhs_rel);
            let mut new_terms = Vec::with_capacity(arity);
            for col in 0..arity {
                match ind.rhs_cols.iter().position(|&c| c == col) {
                    Some(kk) => new_terms.push(terms[ind.lhs_cols[kk]].clone()),
                    None => new_terms.push(QsTerm::Special(ind.rhs_rel, col as u32)),
                }
            }
            let row = (ind.rhs_rel, new_terms);
            if seen.insert(row.clone()) {
                register(&row, &mut witness);
                conjuncts.push(row);
                queue.push_back(conjuncts.len() - 1);
            } else {
                witness.insert(key, ());
            }
        }
    }

    Ok(QStar {
        conjuncts,
        summary,
        prefix_len,
        cutoff,
        k_sigma: k,
        complete,
    })
}

impl QStar {
    /// Views `Q*` as a concrete finite database (each symbol interpreted
    /// as a distinct constant) — e.g. to verify it satisfies Σ.
    pub fn to_database(&self, catalog: &Catalog) -> Database {
        let mut db = Database::new(catalog);
        let val = |t: &QsTerm| -> Value {
            match t {
                QsTerm::Const(c) => Value::Const(c.clone()),
                QsTerm::Sym(v) => Value::str(format!("s{v}")),
                QsTerm::Special(r, c) => Value::str(format!("z_{}_{}", r.0, c)),
            }
        };
        for (rel, terms) in &self.conjuncts {
            db.insert(*rel, terms.iter().map(val).collect())
                .expect("arity correct by construction");
        }
        db
    }

    /// Views `Q*` as a homomorphism target (so `find_hom(Q′, target)`
    /// decides whether `Q′` maps into `Q*` preserving the summary).
    pub fn hom_target(&self, catalog: &Catalog) -> HomTarget {
        // Node encoding: chase symbols keep their ordinal; specials get
        // offset ids above every chase symbol.
        let mut special_ids: FxHashMap<(RelId, u32), u64> = FxHashMap::default();
        let mut next_special = 1u64 << 32;
        let mut conv = |t: &QsTerm| -> TSym {
            match t {
                QsTerm::Const(c) => TSym::Const(c.clone()),
                QsTerm::Sym(v) => TSym::Node(u64::from(*v)),
                QsTerm::Special(r, c) => {
                    let id = *special_ids.entry((*r, *c)).or_insert_with(|| {
                        let id = next_special;
                        next_special += 1;
                        id
                    });
                    TSym::Node(id)
                }
            }
        };
        let mut rows: Vec<Vec<TargetRow>> = vec![Vec::new(); catalog.len()];
        for (i, (rel, terms)) in self.conjuncts.iter().enumerate() {
            rows[rel.index()].push(TargetRow {
                syms: terms.iter().map(&mut conv).collect(),
                tag: i as u32,
                level: if i < self.prefix_len { 0 } else { 1 },
            });
        }
        let summary = self.summary.iter().map(&mut conv).collect();
        HomTarget::from_parts(rows, summary)
    }

    /// Total number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// Whether `Q*` has no conjuncts.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{contained, ContainmentOptions};
    use crate::hom::find_hom;
    use cqchase_ir::parse_program;
    use cqchase_storage::satisfies;

    #[test]
    fn diameter_examples() {
        let p = parse_program(
            "relation R(a, b).
             A(x) :- R(x, y).
             B(x) :- R(x, y), R(y, z), R(z, w).
             C(x) :- R(x, y), R(u, v).",
        )
        .unwrap();
        assert_eq!(query_graph_diameter(p.query("A").unwrap()), 1);
        // Chain: summary–atom1–atom2–atom3.
        assert_eq!(query_graph_diameter(p.query("B").unwrap()), 3);
        // Disconnected component: max component diameter is 1.
        assert_eq!(query_graph_diameter(p.query("C").unwrap()), 1);
    }

    #[test]
    fn qstar_terminates_on_infinite_chase() {
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).",
        )
        .unwrap();
        let qs = build_qstar(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            2,
            ChaseBudget::default(),
        )
        .unwrap();
        assert!(qs.complete);
        // The chase itself is infinite, so Q* strictly extends the prefix
        // with closing-off tuples.
        assert!(qs.len() > qs.prefix_len);
        // k_Σ = arity of R = 2; cutoff = (2+1)·2 = 6.
        assert_eq!(qs.k_sigma, 2);
        assert_eq!(qs.cutoff, 6);
    }

    #[test]
    fn qstar_satisfies_sigma() {
        let p = parse_program(
            "relation R(a, b). relation S(x, y).
             ind R[2] <= R[1]. ind R[1] <= S[2]. ind S[1] <= R[1].
             Q(x) :- R(x, y).",
        )
        .unwrap();
        let qs = build_qstar(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            3,
            ChaseBudget::default(),
        )
        .unwrap();
        assert!(qs.complete);
        let db = qs.to_database(&p.catalog);
        assert!(
            satisfies(&db, &p.deps),
            "Q* viewed as a database must obey Σ"
        );
    }

    #[test]
    fn finite_chase_gives_whole_chase() {
        let p = parse_program(
            "relation R(a). relation S(a).
             ind R[1] <= S[1].
             Q(x) :- R(x).",
        )
        .unwrap();
        let qs = build_qstar(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            1,
            ChaseBudget::default(),
        )
        .unwrap();
        assert_eq!(qs.len(), qs.prefix_len);
        assert_eq!(qs.len(), 2);
    }

    #[test]
    fn hom_into_qstar_matches_containment() {
        // Theorem 3 in action (width-1 INDs): Q′ maps into Q* iff
        // Σ ⊨ Q ⊆∞ Q′.
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q(x) :- R(x, y).
             Yes(x) :- R(x, y), R(y, z), R(z, w).
             No(x) :- R(y, x).",
        )
        .unwrap();
        let q = p.query("Q").unwrap();
        let opts = ContainmentOptions::default();
        for (name, expect) in [("Yes", true), ("No", false)] {
            let qp = p.query(name).unwrap();
            let d = query_graph_diameter(qp);
            let qs = build_qstar(q, &p.deps, &p.catalog, d, ChaseBudget::default()).unwrap();
            let hom = find_hom(qp, &qs.hom_target(&p.catalog)).is_some();
            let inf = contained(q, qp, &p.deps, &p.catalog, &opts)
                .unwrap()
                .contained;
            assert_eq!(inf, expect, "containment for {name}");
            assert_eq!(hom, expect, "Q* hom for {name}");
        }
    }

    #[test]
    fn mixed_sigma_rejected() {
        let p = parse_program(
            "relation R(a, b).
             fd R: b -> a. ind R[2] <= R[1].
             Q(x) :- R(x, y).",
        )
        .unwrap();
        assert_eq!(
            build_qstar(
                p.query("Q").unwrap(),
                &p.deps,
                &p.catalog,
                1,
                ChaseBudget::default()
            ),
            Err(QStarError::NoKSigma)
        );
    }

    #[test]
    fn key_based_qstar() {
        let p = parse_program(
            "relation E(k, a). relation D(k2, b).
             fd E: k -> a. fd D: k2 -> b.
             ind E[2] <= D[1].
             Q(x) :- E(x, y).",
        )
        .unwrap();
        let qs = build_qstar(
            p.query("Q").unwrap(),
            &p.deps,
            &p.catalog,
            2,
            ChaseBudget::default(),
        )
        .unwrap();
        assert!(qs.complete);
        assert!(satisfies(&qs.to_database(&p.catalog), &p.deps));
    }
}
