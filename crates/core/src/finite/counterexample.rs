//! The paper's Section 4 counterexample separating `⊆f` from `⊆∞`.
//!
//! > *Consider the set Σ consisting of the FD `R: {2} → 1` and the IND
//! > `R[2] ⊆ R[1]`. The following two conjunctive queries are equivalent
//! > for all finite databases obeying Σ but not for all infinite ones:*
//! >
//! > *`Q₁ = {(x) : (∃y) R(x, y)}`*
//! > *`Q₂ = {(x) : (∃y)(∃y′) (R(x, y) & R(y′, x))}`*
//!
//! Intuitively: in a *finite* Σ-database, column 2's values sit inside
//! column 1's, and the FD makes the column-2 → column-1 pairing
//! injective, so counting forces every column-1 value to also appear in
//! column 2 — hence every `x` with an outgoing edge also has an incoming
//! one. On infinite databases the counting argument dies (an infinite
//! forward chain satisfies Σ), and indeed the chase of `Q₁` never
//! produces a conjunct `R(·, x)`.

use cqchase_ir::{parse_program, Catalog, ConjunctiveQuery, DependencySet};

/// The fully constructed counterexample.
#[derive(Debug, Clone)]
pub struct Section4Example {
    /// Catalog with the single binary relation `R(a, b)`.
    pub catalog: Catalog,
    /// Σ = {R: b → a, R\[b\] ⊆ R\[a\]} (the paper's `R: {2} → 1`, `R[2] ⊆ R[1]`).
    pub sigma: DependencySet,
    /// `Q1(x) :- R(x, y)`.
    pub q1: ConjunctiveQuery,
    /// `Q2(x) :- R(x, y), R(yp, x)`.
    pub q2: ConjunctiveQuery,
}

/// Builds the Section 4 example.
pub fn section4_example() -> Section4Example {
    let p = parse_program(
        "relation R(a, b).
         fd R: 2 -> 1.
         ind R[2] <= R[1].
         Q1(x) :- R(x, y).
         Q2(x) :- R(x, y), R(yp, x).",
    )
    .expect("the example is well-formed");
    Section4Example {
        q1: p.query("Q1").expect("declared").clone(),
        q2: p.query("Q2").expect("declared").clone(),
        catalog: p.catalog,
        sigma: p.deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{contained, ContainmentOptions};
    use crate::finite::empirical::finite_contained_exhaustive;

    #[test]
    fn q2_infinitely_contained_in_q1() {
        // The easy direction holds outright (drop the second conjunct).
        let ex = section4_example();
        let a = contained(
            &ex.q2,
            &ex.q1,
            &ex.sigma,
            &ex.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap();
        assert!(a.contained && a.exact);
    }

    #[test]
    fn q1_not_infinitely_contained_in_q2() {
        // The chase of Q1 never creates R(·, x): no homomorphism, ever.
        // Σ is Mixed so the negative is a semi-decision — but the deeper
        // we chase the stronger the evidence; the structure (x never in
        // column 2 of any conjunct) is also checked directly.
        let ex = section4_example();
        let a = contained(
            &ex.q1,
            &ex.q2,
            &ex.sigma,
            &ex.catalog,
            &ContainmentOptions::default(),
        )
        .unwrap();
        assert!(!a.contained);
    }

    #[test]
    fn x_never_occurs_in_second_column_of_chase() {
        use crate::chase::{CTerm, Chase, ChaseBudget, ChaseMode};
        let ex = section4_example();
        let mut ch = Chase::new(&ex.q1, &ex.sigma, &ex.catalog, ChaseMode::Required);
        ch.expand_to_level(30, ChaseBudget::default());
        let x = ex.q1.vars.resolve("x").unwrap();
        // Find the chase symbol for x (the single DV: ordinal 0).
        let st = ch.state();
        assert_eq!(st.var_info(crate::chase::CVar(0)).name, "x");
        let _ = x;
        for (_, c) in st.alive_conjuncts() {
            assert_ne!(
                c.terms[1],
                CTerm::Var(crate::chase::CVar(0)),
                "x must never appear in column 2"
            );
        }
    }

    #[test]
    fn finite_containment_holds_exhaustively_domain_3() {
        let ex = section4_example();
        let rep = finite_contained_exhaustive(&ex.q1, &ex.q2, &ex.sigma, &ex.catalog, 3)
            .expect("3×3 = 9 cells is enumerable");
        assert_eq!(rep.instances_total, 512);
        assert!(rep.instances_satisfying > 0);
        assert!(
            rep.holds(),
            "Q1 ⊆f Q2 must hold on every finite Σ-instance; counterexample: {:?}",
            rep.counterexample.map(|d| d.to_string())
        );
    }

    #[test]
    fn finite_containment_fails_without_the_fd() {
        // Dropping the FD breaks the counting argument: a 2-element
        // "forward only" instance… actually with only the IND, values in
        // column 2 appear in column 1 but nothing forces incoming edges
        // onto x. Verify a finite witness exists.
        let p = parse_program(
            "relation R(a, b).
             ind R[2] <= R[1].
             Q1(x) :- R(x, y).
             Q2(x) :- R(x, y), R(yp, x).",
        )
        .unwrap();
        let rep = finite_contained_exhaustive(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap(),
            &p.deps,
            &p.catalog,
            3,
        )
        .unwrap();
        assert!(!rep.holds(), "without the FD the containment is refutable");
    }

    #[test]
    fn finite_containment_fails_without_the_ind() {
        let p = parse_program(
            "relation R(a, b).
             fd R: 2 -> 1.
             Q1(x) :- R(x, y).
             Q2(x) :- R(x, y), R(yp, x).",
        )
        .unwrap();
        let rep = finite_contained_exhaustive(
            p.query("Q1").unwrap(),
            p.query("Q2").unwrap(),
            &p.deps,
            &p.catalog,
            2,
        )
        .unwrap();
        assert!(!rep.holds());
    }
}
