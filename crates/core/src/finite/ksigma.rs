//! The symbol-travel constant `k_Σ` of Theorem 3.
//!
//! > *For any Σ satisfying (i) or (ii), there is a constant `k_Σ` such
//! > that no symbol can occur in conjuncts at distinct levels `i` and `j`
//! > unless `|i − j| ≤ k_Σ`.*
//!
//! * Key-based Σ: `k_Σ = 1` (Lemma 6 — symbols enter non-key columns and
//!   can be passed on only into key columns, so they last two levels).
//! * Width-1 IND sets: a symbol propagates one level per (relation,
//!   column) it has not visited before in an R-chase, so the sum of the
//!   arities of the relations occurring as IND right-hand sides bounds
//!   the travel.

use std::collections::BTreeSet;

use cqchase_ir::{Catalog, DependencySet};

use crate::classify::{classify, SigmaClass};

/// Computes `k_Σ`, or `None` when Σ is in neither Theorem 3 class
/// (finite controllability is then not guaranteed — see the Section 4
/// counterexample).
pub fn k_sigma(sigma: &DependencySet, catalog: &Catalog) -> Option<u32> {
    match classify(sigma, catalog) {
        SigmaClass::KeyBased { .. } => Some(1),
        SigmaClass::Empty | SigmaClass::FdsOnly => Some(0),
        SigmaClass::IndsOnly { width } if width <= 1 => {
            let rhs_rels: BTreeSet<_> = sigma.inds().map(|i| i.rhs_rel).collect();
            let total: usize = rhs_rels.iter().map(|&r| catalog.arity(r)).sum();
            Some(total as u32)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    fn k(src: &str) -> Option<u32> {
        let p = parse_program(src).unwrap();
        k_sigma(&p.deps, &p.catalog)
    }

    #[test]
    fn key_based_is_one() {
        assert_eq!(
            k("relation E(k, a). relation D(k2, b).
               fd E: k -> a. fd D: k2 -> b.
               ind E[2] <= D[1]."),
            Some(1)
        );
    }

    #[test]
    fn width_one_inds_sum_arities() {
        // RHS relations: R (arity 2) and S (arity 3) → k = 5.
        assert_eq!(
            k("relation R(a, b). relation S(x, y, z).
               ind R[2] <= R[1]. ind R[1] <= S[2]. ind S[1] <= R[1]."),
            Some(5)
        );
    }

    #[test]
    fn rhs_relation_counted_once() {
        assert_eq!(
            k("relation R(a, b).
               ind R[2] <= R[1]. ind R[1] <= R[2]."),
            Some(2)
        );
    }

    #[test]
    fn wide_inds_not_covered() {
        assert_eq!(
            k("relation R(a, b). relation S(x, y).
               ind R[1, 2] <= S[1, 2]."),
            None
        );
    }

    #[test]
    fn section4_sigma_not_covered() {
        // Mixed (non-key-based) FD+IND: no k_Σ — exactly why the finite
        // counterexample can exist.
        assert_eq!(
            k("relation R(a, b).
               fd R: b -> a. ind R[2] <= R[1]."),
            None
        );
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(k("relation R(a)."), Some(0));
        assert_eq!(k("relation R(a, b). fd R: a -> b."), Some(0));
    }
}
