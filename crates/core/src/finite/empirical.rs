//! Empirical finite-containment checking by exhaustive enumeration.
//!
//! `Σ ⊨ Q ⊆f Q′` quantifies over every finite Σ-satisfying database. For
//! tiny domains we can simply enumerate them all, evaluate both queries,
//! and compare — which is how the experiments *demonstrate* (not prove)
//! the Section 4 claims: the counterexample's finite containment holds on
//! every instance up to the enumeration limit, while the chase refutes
//! unrestricted containment.

use cqchase_ir::{Catalog, ConjunctiveQuery, DependencySet};
use cqchase_storage::{enumerate, evaluate, satisfies, Database};

/// Outcome of an exhaustive finite-containment sweep.
#[derive(Debug, Clone)]
pub struct FiniteCheckReport {
    /// The domain size `{0, …, domain-1}` enumerated over.
    pub domain: i64,
    /// Number of instances enumerated (2^cells).
    pub instances_total: u64,
    /// How many satisfied Σ (only those count).
    pub instances_satisfying: u64,
    /// A Σ-satisfying instance with `Q(B) ⊄ Q′(B)`, if one exists: a
    /// *witness against* finite containment.
    pub counterexample: Option<Database>,
}

impl FiniteCheckReport {
    /// Whether `Q(B) ⊆ Q′(B)` held on every enumerated Σ-instance.
    pub fn holds(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Checks `Q(B) ⊆ Q′(B)` on **every** database over `{0, …, domain-1}`
/// that satisfies Σ. Returns `None` when the instance space is too large
/// to enumerate (see [`enumerate::MAX_CELLS`]).
pub fn finite_contained_exhaustive(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    domain: i64,
) -> Option<FiniteCheckReport> {
    let instances = enumerate::all_instances(catalog, domain)?;
    let instances_total = instances.count_total();
    let mut instances_satisfying = 0u64;
    let mut counterexample = None;
    for db in instances {
        if !satisfies(&db, sigma) {
            continue;
        }
        instances_satisfying += 1;
        if counterexample.is_none() {
            let a = evaluate(q, &db);
            let b = evaluate(q_prime, &db);
            let b_set: cqchase_index::FxHashSet<_> = b.into_iter().collect();
            if !a.iter().all(|t| b_set.contains(t)) {
                counterexample = Some(db);
            }
        }
    }
    Some(FiniteCheckReport {
        domain,
        instances_total,
        instances_satisfying,
        counterexample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::parse_program;

    #[test]
    fn trivial_containment_holds_finitely() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y), R(y, z).
             Qp(x) :- R(x, w).",
        )
        .unwrap();
        let rep = finite_contained_exhaustive(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            2,
        )
        .unwrap();
        assert!(rep.holds());
        assert_eq!(rep.instances_total, 16);
        assert_eq!(rep.instances_satisfying, 16); // Σ empty
    }

    #[test]
    fn non_containment_finds_witness() {
        let p = parse_program(
            "relation R(a, b).
             Q(x) :- R(x, y).
             Qp(x) :- R(y, x).",
        )
        .unwrap();
        let rep = finite_contained_exhaustive(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            2,
        )
        .unwrap();
        assert!(!rep.holds());
        let w = rep.counterexample.unwrap();
        assert!(w.total_tuples() >= 1);
    }

    #[test]
    fn sigma_filters_instances() {
        let p = parse_program(
            "relation R(a, b).
             fd R: a -> b.
             Q(x) :- R(x, y).
             Qp(x) :- R(x, z).",
        )
        .unwrap();
        let rep = finite_contained_exhaustive(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            2,
        )
        .unwrap();
        assert!(rep.holds());
        // FD a→b over 2×2: instances where no key repeats. 16 total; the
        // violating ones pair (0,0)&(0,1) or (1,0)&(1,1): count = 16 − 7 = 9.
        assert_eq!(rep.instances_total, 16);
        assert_eq!(rep.instances_satisfying, 9);
    }

    #[test]
    fn oversized_domain_refused() {
        let p = parse_program(
            "relation R(a, b, c).
             Q(x) :- R(x, y, z).
             Qp(x) :- R(x, y2, z2).",
        )
        .unwrap();
        assert!(finite_contained_exhaustive(
            p.query("Q").unwrap(),
            p.query("Qp").unwrap(),
            &p.deps,
            &p.catalog,
            4, // 4^3 = 64 cells > MAX_CELLS
        )
        .is_none());
    }
}
