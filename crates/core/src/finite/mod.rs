//! Finite databases vs. all databases — the paper's Section 4.
//!
//! Containment over finite databases (`⊆f`) is implied by containment
//! over all databases (`⊆∞`) but not conversely: the paper exhibits a
//! one-FD-one-IND Σ separating them ([`counterexample`]). When the two
//! notions coincide the problem is *finitely controllable*; Theorem 3
//! proves this for key-based Σ and for width-1 IND sets, via a constant
//! [`ksigma::k_sigma`] bounding how far a symbol can travel between
//! levels and a finite query `Q*` ([`qstar`]) that mimics the infinite
//! chase locally. [`empirical`] verifies finite-containment claims by
//! exhaustive enumeration of small instances.

pub mod counterexample;
pub mod empirical;
pub mod ksigma;
pub mod qstar;

pub use counterexample::{section4_example, Section4Example};
pub use empirical::{finite_contained_exhaustive, FiniteCheckReport};
pub use ksigma::k_sigma;
pub use qstar::{build_qstar, QStar, QsTerm};
