//! Error types shared across the IR: parse errors with source spans and
//! structural validation errors.

use std::fmt;

/// A half-open byte range into a source text, with 1-based line/column of
/// its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Every way constructing or parsing an IR object can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The surface-language lexer met a character it cannot start a token
    /// with.
    Lex {
        /// Location of the offending character.
        span: Span,
        /// Explanation of what was found.
        message: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Location of the unexpected token.
        span: Span,
        /// What was expected and what was found.
        message: String,
    },
    /// A relation name was declared twice in one catalog.
    DuplicateRelation {
        /// The repeated name.
        name: String,
    },
    /// A relation declared with a repeated attribute name.
    DuplicateAttribute {
        /// The relation being declared.
        relation: String,
        /// The repeated attribute.
        attribute: String,
    },
    /// A name was used where a declared relation was required.
    UnknownRelation {
        /// The undeclared name.
        name: String,
    },
    /// An attribute name or index did not exist in the named relation.
    UnknownAttribute {
        /// The relation consulted.
        relation: String,
        /// The attribute (name or 1-based index rendered as text).
        attribute: String,
    },
    /// An atom supplied the wrong number of terms for its relation.
    ArityMismatch {
        /// The relation.
        relation: String,
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of terms the atom supplied.
        found: usize,
    },
    /// The two sides of an inclusion dependency have different lengths.
    IndWidthMismatch {
        /// Length of the left-hand attribute list.
        lhs: usize,
        /// Length of the right-hand attribute list.
        rhs: usize,
    },
    /// An attribute list that must not repeat attributes repeated one.
    RepeatedColumn {
        /// The relation whose column list is malformed.
        relation: String,
        /// 0-based column index that was repeated.
        column: usize,
    },
    /// An FD whose right-hand side also appears on its left-hand side is
    /// trivial and rejected to keep dependency sets canonical.
    TrivialFd {
        /// The relation of the dependency.
        relation: String,
    },
    /// A query head used a variable that never occurs in the body, so the
    /// query is not range-restricted (safe).
    UnsafeHeadVariable {
        /// The query.
        query: String,
        /// The offending variable name.
        variable: String,
    },
    /// A query used the same name twice (e.g. two queries named `Q`).
    DuplicateQuery {
        /// The repeated query name.
        name: String,
    },
    /// Two queries were combined in an operation that requires identical
    /// output schemes (e.g. containment), but the schemes differ.
    OutputSchemeMismatch {
        /// Arity of the first query's summary row.
        left: usize,
        /// Arity of the second query's summary row.
        right: usize,
    },
    /// A variable id referenced a slot that does not exist in the query's
    /// variable table.
    DanglingVariable {
        /// The raw variable index.
        index: u32,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            IrError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            IrError::DuplicateRelation { name } => {
                write!(f, "relation `{name}` is declared more than once")
            }
            IrError::DuplicateAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "relation `{relation}` declares attribute `{attribute}` more than once"
            ),
            IrError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            IrError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            IrError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has {expected} columns but {found} terms were supplied"
            ),
            IrError::IndWidthMismatch { lhs, rhs } => write!(
                f,
                "inclusion dependency sides have different widths ({lhs} vs {rhs})"
            ),
            IrError::RepeatedColumn { relation, column } => write!(
                f,
                "column list for `{relation}` repeats column index {column}"
            ),
            IrError::TrivialFd { relation } => write!(
                f,
                "functional dependency on `{relation}` is trivial (rhs contained in lhs)"
            ),
            IrError::UnsafeHeadVariable { query, variable } => write!(
                f,
                "query `{query}` head variable `{variable}` does not occur in the body"
            ),
            IrError::DuplicateQuery { name } => {
                write!(f, "query `{name}` is declared more than once")
            }
            IrError::OutputSchemeMismatch { left, right } => write!(
                f,
                "queries have different output arities ({left} vs {right})"
            ),
            IrError::DanglingVariable { index } => {
                write!(f, "variable index {index} is out of range for this query")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used throughout the crate.
pub type IrResult<T> = Result<T, IrError>;
