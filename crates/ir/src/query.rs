//! Conjunctive queries: conjuncts, summary rows and variable tables.

use std::collections::BTreeSet;

use crate::catalog::RelId;
use crate::term::{Term, VarId};

/// Whether a variable is distinguished (occurs in the summary row /
/// output) or nondistinguished (existential).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarKind {
    /// A distinguished variable (DV): may appear in the summary row.
    Distinguished,
    /// A nondistinguished variable (NDV): purely existential.
    Existential,
}

/// Metadata for one variable of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (unique within the query).
    pub name: String,
    /// DV or NDV.
    pub kind: VarKind,
}

/// The variable table of a query: names and kinds, indexed by [`VarId`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarTable {
    vars: Vec<VarInfo>,
}

impl VarTable {
    /// An empty table.
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Adds a variable and returns its id. Names are not checked for
    /// uniqueness here (builders and the parser enforce that).
    pub fn push(&mut self, name: impl Into<String>, kind: VarKind) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            kind,
        });
        id
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Metadata for `v`. Panics if `v` is out of range.
    pub fn info(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// The kind of `v`.
    pub fn kind(&self, v: VarId) -> VarKind {
        self.vars[v.index()].kind
    }

    /// The name of `v`.
    pub fn name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Looks up a variable by name.
    pub fn resolve(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|i| i.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Iterator over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// Ids of all distinguished variables, ascending.
    pub fn distinguished(&self) -> Vec<VarId> {
        self.iter()
            .filter(|(_, i)| i.kind == VarKind::Distinguished)
            .map(|(v, _)| v)
            .collect()
    }
}

/// One conjunct of a query: a relation and a term for each of its columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The relation this conjunct ranges over (the paper's `R(c)`).
    pub relation: RelId,
    /// One term per column of the relation.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom. Arity against the catalog is checked by
    /// [`validate`](crate::validate).
    pub fn new(relation: RelId, terms: Vec<Term>) -> Self {
        Atom { relation, terms }
    }

    /// The variables occurring in this atom, in position order with
    /// duplicates.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }
}

/// A conjunctive query, following the paper's six-part formalization:
/// input scheme (the catalog, held externally), output scheme (positional,
/// the summary row's arity), DVs and NDVs (the [`VarTable`]), conjuncts
/// ([`Atom`]s) and a summary row of DVs and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Name of the query (used in display and diagnostics).
    pub name: String,
    /// The summary row: each entry is a DV or a constant.
    pub head: Vec<Term>,
    /// The conjuncts.
    pub atoms: Vec<Atom>,
    /// Variable names and kinds.
    pub vars: VarTable,
}

impl ConjunctiveQuery {
    /// Output arity (the paper's `p`).
    pub fn output_arity(&self) -> usize {
        self.head.len()
    }

    /// Number of conjuncts (the paper's `|Q|` size measure is dominated by
    /// this).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the query is Boolean (empty summary row): "return the empty
    /// tuple iff the body is satisfiable".
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The set of variables occurring in the body.
    pub fn body_vars(&self) -> BTreeSet<VarId> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// The set of variables occurring in the head.
    pub fn head_vars(&self) -> BTreeSet<VarId> {
        self.head.iter().filter_map(Term::as_var).collect()
    }

    /// The subquery induced by keeping only the atoms at `keep` (indices
    /// into [`ConjunctiveQuery::atoms`]), with the same summary row and
    /// variable table. This mirrors the paper's notion of a subquery: "a
    /// subset of the conjuncts viewed as a query with the same summary
    /// row".
    pub fn subquery(&self, keep: &[usize]) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: format!("{}_sub", self.name),
            head: self.head.clone(),
            atoms: keep.iter().map(|&i| self.atoms[i].clone()).collect(),
            vars: self.vars.clone(),
        }
    }

    /// The subquery dropping exactly the atom at `drop_idx`.
    pub fn without_atom(&self, drop_idx: usize) -> ConjunctiveQuery {
        let keep: Vec<usize> = (0..self.atoms.len()).filter(|&i| i != drop_idx).collect();
        self.subquery(&keep)
    }

    /// Total number of term positions across all conjuncts — a convenient
    /// size measure for budgets and experiment tables.
    pub fn size(&self) -> usize {
        self.atoms.iter().map(|a| a.terms.len()).sum::<usize>() + self.head.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Constant;

    fn tiny() -> ConjunctiveQuery {
        // Q(x) :- R(x, y), R(y, x)
        let mut vars = VarTable::new();
        let x = vars.push("x", VarKind::Distinguished);
        let y = vars.push("y", VarKind::Existential);
        ConjunctiveQuery {
            name: "Q".into(),
            head: vec![Term::Var(x)],
            atoms: vec![
                Atom::new(RelId(0), vec![Term::Var(x), Term::Var(y)]),
                Atom::new(RelId(0), vec![Term::Var(y), Term::Var(x)]),
            ],
            vars,
        }
    }

    #[test]
    fn basic_accessors() {
        let q = tiny();
        assert_eq!(q.output_arity(), 1);
        assert_eq!(q.num_atoms(), 2);
        assert!(!q.is_boolean());
        assert_eq!(q.body_vars().len(), 2);
        assert_eq!(q.head_vars().len(), 1);
        assert_eq!(q.size(), 5);
    }

    #[test]
    fn var_table_lookup() {
        let q = tiny();
        let x = q.vars.resolve("x").unwrap();
        assert_eq!(q.vars.kind(x), VarKind::Distinguished);
        assert_eq!(q.vars.name(x), "x");
        assert!(q.vars.resolve("zz").is_none());
        assert_eq!(q.vars.distinguished(), vec![x]);
    }

    #[test]
    fn subquery_keeps_head() {
        let q = tiny();
        let s = q.subquery(&[1]);
        assert_eq!(s.num_atoms(), 1);
        assert_eq!(s.head, q.head);
        let d = q.without_atom(0);
        assert_eq!(d.atoms[0], q.atoms[1]);
    }

    #[test]
    fn boolean_query() {
        let mut vars = VarTable::new();
        let y = vars.push("y", VarKind::Existential);
        let q = ConjunctiveQuery {
            name: "B".into(),
            head: vec![],
            atoms: vec![Atom::new(RelId(0), vec![Term::Var(y), Term::Var(y)])],
            vars,
        };
        assert!(q.is_boolean());
        assert_eq!(q.output_arity(), 0);
    }

    #[test]
    fn constant_in_head() {
        let mut vars = VarTable::new();
        let x = vars.push("x", VarKind::Distinguished);
        let q = ConjunctiveQuery {
            name: "C".into(),
            head: vec![Term::Var(x), Term::Const(Constant::int(1))],
            atoms: vec![Atom::new(RelId(0), vec![Term::Var(x)])],
            vars,
        };
        assert_eq!(q.output_arity(), 2);
        assert_eq!(q.head_vars().len(), 1);
    }
}
