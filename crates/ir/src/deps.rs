//! Functional and inclusion dependencies.

use crate::catalog::RelId;

/// A functional dependency `R: Z -> A`: no two tuples of `R` may agree on
/// the columns `Z` yet differ on column `A`.
///
/// Columns are 0-based indices into the relation's scheme. Following the
/// paper, the right-hand side is a single attribute; conjunctions
/// `Z -> A1 A2` are represented as several FDs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// The relation constrained.
    pub relation: RelId,
    /// Left-hand side columns `Z` (sorted, duplicate-free).
    pub lhs: Vec<usize>,
    /// Right-hand side column `A`.
    pub rhs: usize,
}

impl Fd {
    /// Creates an FD, sorting and deduplicating the left-hand side so that
    /// structurally equal dependencies compare equal.
    pub fn new(relation: RelId, mut lhs: Vec<usize>, rhs: usize) -> Self {
        lhs.sort_unstable();
        lhs.dedup();
        Fd { relation, lhs, rhs }
    }

    /// An FD is trivial when its right-hand side is already on the left.
    pub fn is_trivial(&self) -> bool {
        self.lhs.contains(&self.rhs)
    }
}

/// An inclusion dependency `R[X] ⊆ S[Y]`: every subtuple occurring in
/// columns `X` of `R` also occurs in columns `Y` of some tuple of `S`.
///
/// `X` and `Y` are *ordered* lists of equal length (the IND's **width**);
/// each list must not repeat a column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ind {
    /// Left relation `R`.
    pub lhs_rel: RelId,
    /// Left column list `X` (0-based, order matters).
    pub lhs_cols: Vec<usize>,
    /// Right relation `S`.
    pub rhs_rel: RelId,
    /// Right column list `Y` (0-based, order matters, same length as `X`).
    pub rhs_cols: Vec<usize>,
}

impl Ind {
    /// Creates an IND. Width equality is checked by
    /// [`validate`](crate::validate); this constructor is shape-preserving.
    pub fn new(lhs_rel: RelId, lhs_cols: Vec<usize>, rhs_rel: RelId, rhs_cols: Vec<usize>) -> Self {
        Ind {
            lhs_rel,
            lhs_cols,
            rhs_rel,
            rhs_cols,
        }
    }

    /// The number of attributes on either side (the paper's *width*).
    pub fn width(&self) -> usize {
        self.lhs_cols.len()
    }

    /// An IND of the form `R[X] ⊆ R[X]` is trivial.
    pub fn is_trivial(&self) -> bool {
        self.lhs_rel == self.rhs_rel && self.lhs_cols == self.rhs_cols
    }
}

/// Either kind of dependency.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dependency {
    /// A functional dependency.
    Fd(Fd),
    /// An inclusion dependency.
    Ind(Ind),
}

impl Dependency {
    /// The FD inside, if any.
    pub fn as_fd(&self) -> Option<&Fd> {
        match self {
            Dependency::Fd(f) => Some(f),
            Dependency::Ind(_) => None,
        }
    }

    /// The IND inside, if any.
    pub fn as_ind(&self) -> Option<&Ind> {
        match self {
            Dependency::Ind(i) => Some(i),
            Dependency::Fd(_) => None,
        }
    }
}

impl From<Fd> for Dependency {
    fn from(f: Fd) -> Self {
        Dependency::Fd(f)
    }
}

impl From<Ind> for Dependency {
    fn from(i: Ind) -> Self {
        Dependency::Ind(i)
    }
}

/// An ordered set Σ of dependencies. Order is significant: the paper's
/// canonical chase picks "the lexicographically first applicable
/// dependency", which we realize as *first in declaration order*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencySet {
    deps: Vec<Dependency>,
}

impl DependencySet {
    /// An empty Σ.
    pub fn new() -> Self {
        DependencySet::default()
    }

    /// Builds from any iterator of dependencies, preserving order and
    /// dropping exact duplicates.
    #[allow(clippy::should_implement_trait)] // FromIterator is also implemented; this inherent form reads better at call sites
    pub fn from_iter(deps: impl IntoIterator<Item = Dependency>) -> Self {
        let mut out = DependencySet::new();
        for d in deps {
            out.push(d);
        }
        out
    }

    /// Appends a dependency unless an identical one is already present.
    pub fn push(&mut self, dep: impl Into<Dependency>) {
        let dep = dep.into();
        if !self.deps.contains(&dep) {
            self.deps.push(dep);
        }
    }

    /// Number of dependencies (the paper's `|Σ|`).
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether Σ is empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// All dependencies in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Dependency> {
        self.deps.iter()
    }

    /// The FDs, in declaration order (the paper's `Σ[F]`).
    pub fn fds(&self) -> impl Iterator<Item = &Fd> {
        self.deps.iter().filter_map(Dependency::as_fd)
    }

    /// The INDs, in declaration order (the paper's `Σ[I]`).
    pub fn inds(&self) -> impl Iterator<Item = &Ind> {
        self.deps.iter().filter_map(Dependency::as_ind)
    }

    /// Number of FDs.
    pub fn num_fds(&self) -> usize {
        self.fds().count()
    }

    /// Number of INDs.
    pub fn num_inds(&self) -> usize {
        self.inds().count()
    }

    /// The FDs constraining relation `rel`.
    pub fn fds_for(&self, rel: RelId) -> impl Iterator<Item = &Fd> {
        self.fds().filter(move |f| f.relation == rel)
    }

    /// The INDs whose left-hand relation is `rel` (the ones *applicable*
    /// to conjuncts of `rel` in the chase).
    pub fn inds_from(&self, rel: RelId) -> impl Iterator<Item = &Ind> {
        self.inds().filter(move |i| i.lhs_rel == rel)
    }

    /// The maximum IND width `W` (0 when there are no INDs), the parameter
    /// of the paper's Theorem 2 bound.
    pub fn max_ind_width(&self) -> usize {
        self.inds().map(Ind::width).max().unwrap_or(0)
    }

    /// Splits Σ into `(Σ[F], Σ[I])` as two fresh sets.
    pub fn split(&self) -> (DependencySet, DependencySet) {
        let fds = DependencySet::from_iter(self.fds().cloned().map(Dependency::Fd));
        let inds = DependencySet::from_iter(self.inds().cloned().map(Dependency::Ind));
        (fds, inds)
    }
}

impl FromIterator<Dependency> for DependencySet {
    fn from_iter<T: IntoIterator<Item = Dependency>>(iter: T) -> Self {
        DependencySet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_lhs_canonicalized() {
        let f = Fd::new(RelId(0), vec![2, 0, 2], 1);
        assert_eq!(f.lhs, vec![0, 2]);
        assert!(!f.is_trivial());
        assert!(Fd::new(RelId(0), vec![1], 1).is_trivial());
    }

    #[test]
    fn ind_width_and_trivial() {
        let i = Ind::new(RelId(0), vec![0, 2], RelId(1), vec![1, 0]);
        assert_eq!(i.width(), 2);
        assert!(!i.is_trivial());
        assert!(Ind::new(RelId(0), vec![0], RelId(0), vec![0]).is_trivial());
        assert!(!Ind::new(RelId(0), vec![0], RelId(0), vec![1]).is_trivial());
    }

    #[test]
    fn set_dedups_and_splits() {
        let mut s = DependencySet::new();
        s.push(Fd::new(RelId(0), vec![0], 1));
        s.push(Fd::new(RelId(0), vec![0], 1)); // duplicate
        s.push(Ind::new(RelId(0), vec![1], RelId(1), vec![0]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_fds(), 1);
        assert_eq!(s.num_inds(), 1);
        let (f, i) = s.split();
        assert_eq!(f.len(), 1);
        assert_eq!(i.len(), 1);
        assert_eq!(s.max_ind_width(), 1);
    }

    #[test]
    fn per_relation_accessors() {
        let mut s = DependencySet::new();
        s.push(Fd::new(RelId(0), vec![0], 1));
        s.push(Fd::new(RelId(1), vec![0], 1));
        s.push(Ind::new(RelId(0), vec![1], RelId(1), vec![0]));
        assert_eq!(s.fds_for(RelId(0)).count(), 1);
        assert_eq!(s.inds_from(RelId(0)).count(), 1);
        assert_eq!(s.inds_from(RelId(1)).count(), 0);
    }

    #[test]
    fn empty_width_is_zero() {
        assert_eq!(DependencySet::new().max_ind_width(), 0);
    }
}
