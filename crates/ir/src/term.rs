//! Terms: the symbols that fill conjunct positions — constants and
//! variables.

use std::fmt;
use std::sync::Arc;

/// A constant value. The paper treats constants abstractly as elements of
/// attribute domains; we support integers and interned strings, which is
/// enough for every construction in the paper (constants only matter up to
/// equality and identity-preservation under homomorphisms).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// An integer constant.
    Int(i64),
    /// A string constant (cheap to clone: shared allocation).
    Str(Arc<str>),
}

impl Constant {
    /// A string constant from any string-ish value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Constant::Str(Arc::from(s.as_ref()))
    }

    /// An integer constant.
    pub fn int(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::str(s)
    }
}

/// Identifier of a variable within one query's [`VarTable`].
///
/// Variable ids are dense per-query indices; they are meaningless across
/// queries (renaming apart is explicit downstream).
///
/// [`VarTable`]: crate::query::VarTable
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One position of a conjunct or summary row: a distinguished variable, a
/// nondistinguished variable, or a constant. Which of DV/NDV a variable is
/// lives in the owning query's variable table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant.
    Const(Constant),
    /// A variable (distinguished or not — see the owning query).
    Var(VarId),
}

impl Term {
    /// Whether the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Whether the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable id, if the term is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if the term is one.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_equality_and_order() {
        assert_eq!(Constant::int(3), Constant::Int(3));
        assert_eq!(Constant::str("x"), Constant::str("x"));
        assert_ne!(Constant::str("x"), Constant::str("y"));
        assert!(Constant::Int(1) < Constant::Int(2));
        // Ints sort before strings by enum declaration order.
        assert!(Constant::Int(99) < Constant::str("a"));
    }

    #[test]
    fn term_accessors() {
        let t = Term::Var(VarId(4));
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(VarId(4)));
        assert_eq!(t.as_const(), None);
        let c = Term::Const(Constant::int(7));
        assert!(c.is_const());
        assert_eq!(c.as_const(), Some(&Constant::Int(7)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn display_constants() {
        assert_eq!(Constant::int(-5).to_string(), "-5");
        assert_eq!(Constant::str("hi").to_string(), "\"hi\"");
    }
}
