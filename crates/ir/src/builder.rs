//! Ergonomic builders for queries and dependency sets.
//!
//! The builders resolve names against a [`Catalog`], intern variables on
//! first use (head variables become DVs, all others NDVs), and validate
//! the finished object, so programmatic construction is as safe as going
//! through the parser.

use crate::catalog::{Catalog, RelId};
use crate::deps::{DependencySet, Fd, Ind};
use crate::error::{IrError, IrResult};
use crate::query::{Atom, ConjunctiveQuery, VarKind, VarTable};
use crate::term::{Constant, Term};
use crate::validate;

/// A term as written by a builder user: a variable *name* or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermSpec {
    /// A named variable; interned on first use.
    Var(String),
    /// A constant.
    Const(Constant),
}

impl From<&str> for TermSpec {
    fn from(s: &str) -> Self {
        TermSpec::Var(s.to_owned())
    }
}

impl From<String> for TermSpec {
    fn from(s: String) -> Self {
        TermSpec::Var(s)
    }
}

impl From<i64> for TermSpec {
    fn from(i: i64) -> Self {
        TermSpec::Const(Constant::int(i))
    }
}

impl From<Constant> for TermSpec {
    fn from(c: Constant) -> Self {
        TermSpec::Const(c)
    }
}

/// Builds a [`ConjunctiveQuery`] by naming variables.
///
/// ```
/// use cqchase_ir::{Catalog, QueryBuilder};
///
/// let mut cat = Catalog::new();
/// cat.declare("EMP", ["eno", "sal", "dept"]).unwrap();
/// cat.declare("DEP", ["dno", "loc"]).unwrap();
///
/// let q = QueryBuilder::new("Q1", &cat)
///     .head_vars(["e"])
///     .atom("EMP", ["e", "s", "d"]).unwrap()
///     .atom("DEP", ["d", "l"]).unwrap()
///     .build()
///     .unwrap();
/// assert_eq!(q.num_atoms(), 2);
/// ```
pub struct QueryBuilder<'c> {
    catalog: &'c Catalog,
    name: String,
    head: Vec<TermSpec>,
    atoms: Vec<(RelId, Vec<TermSpec>)>,
}

impl<'c> QueryBuilder<'c> {
    /// Starts a query named `name` over `catalog`.
    pub fn new(name: impl Into<String>, catalog: &'c Catalog) -> Self {
        QueryBuilder {
            catalog,
            name: name.into(),
            head: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// Sets the summary row to the given variable names (the common case).
    pub fn head_vars(mut self, vars: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.head = vars.into_iter().map(|v| TermSpec::Var(v.into())).collect();
        self
    }

    /// Sets the summary row from mixed term specs (variables and
    /// constants).
    pub fn head(mut self, terms: impl IntoIterator<Item = impl Into<TermSpec>>) -> Self {
        self.head = terms.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a conjunct over `relation` with the given terms.
    pub fn atom(
        mut self,
        relation: &str,
        terms: impl IntoIterator<Item = impl Into<TermSpec>>,
    ) -> IrResult<Self> {
        let rel = self.catalog.require(relation)?;
        self.atoms
            .push((rel, terms.into_iter().map(Into::into).collect()));
        Ok(self)
    }

    /// Finishes the query: interns variables (head variables are DVs,
    /// everything else NDVs, in first-occurrence order with DVs first) and
    /// validates the result.
    pub fn build(self) -> IrResult<ConjunctiveQuery> {
        let mut vars = VarTable::new();
        // Head variables first, as DVs; this makes the natural var order
        // "DVs before NDVs", matching the paper's lexicographic setup.
        let mut head = Vec::with_capacity(self.head.len());
        for spec in &self.head {
            head.push(match spec {
                TermSpec::Const(c) => Term::Const(c.clone()),
                TermSpec::Var(n) => {
                    let v = vars
                        .resolve(n)
                        .unwrap_or_else(|| vars.push(n.clone(), VarKind::Distinguished));
                    Term::Var(v)
                }
            });
        }
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for (rel, specs) in &self.atoms {
            let mut terms = Vec::with_capacity(specs.len());
            for spec in specs {
                terms.push(match spec {
                    TermSpec::Const(c) => Term::Const(c.clone()),
                    TermSpec::Var(n) => {
                        let v = vars
                            .resolve(n)
                            .unwrap_or_else(|| vars.push(n.clone(), VarKind::Existential));
                        Term::Var(v)
                    }
                });
            }
            atoms.push(Atom::new(*rel, terms));
        }
        let q = ConjunctiveQuery {
            name: self.name,
            head,
            atoms,
            vars,
        };
        validate::validate_query(&q, self.catalog)?;
        Ok(q)
    }
}

/// Builds a validated [`DependencySet`] by naming relations and attributes.
///
/// ```
/// use cqchase_ir::{Catalog, DependencySetBuilder};
///
/// let mut cat = Catalog::new();
/// cat.declare("EMP", ["eno", "sal", "dept"]).unwrap();
/// cat.declare("DEP", ["dno", "loc"]).unwrap();
///
/// let sigma = DependencySetBuilder::new(&cat)
///     .fd("EMP", ["eno"], "sal").unwrap()
///     .ind("EMP", ["dept"], "DEP", ["dno"]).unwrap()
///     .build();
/// assert_eq!(sigma.len(), 2);
/// ```
pub struct DependencySetBuilder<'c> {
    catalog: &'c Catalog,
    deps: DependencySet,
}

impl<'c> DependencySetBuilder<'c> {
    /// Starts an empty Σ over `catalog`.
    pub fn new(catalog: &'c Catalog) -> Self {
        DependencySetBuilder {
            catalog,
            deps: DependencySet::new(),
        }
    }

    fn col(&self, rel: RelId, attr: &str) -> IrResult<usize> {
        // Accept `#k` (1-based position) as well as attribute names.
        if let Some(num) = attr.strip_prefix('#') {
            if let Ok(k) = num.parse::<usize>() {
                if k >= 1 && k <= self.catalog.arity(rel) {
                    return Ok(k - 1);
                }
            }
            return Err(IrError::UnknownAttribute {
                relation: self.catalog.name(rel).to_owned(),
                attribute: attr.to_owned(),
            });
        }
        self.catalog
            .schema(rel)
            .column_of(attr)
            .ok_or_else(|| IrError::UnknownAttribute {
                relation: self.catalog.name(rel).to_owned(),
                attribute: attr.to_owned(),
            })
    }

    /// Adds the FD `relation: lhs -> rhs`.
    pub fn fd(
        mut self,
        relation: &str,
        lhs: impl IntoIterator<Item = impl AsRef<str>>,
        rhs: &str,
    ) -> IrResult<Self> {
        let rel = self.catalog.require(relation)?;
        let lhs: IrResult<Vec<usize>> =
            lhs.into_iter().map(|a| self.col(rel, a.as_ref())).collect();
        let fd = Fd::new(rel, lhs?, self.col(rel, rhs)?);
        validate::validate_fd(&fd, self.catalog)?;
        self.deps.push(fd);
        Ok(self)
    }

    /// Adds the IND `lhs_rel[lhs_cols] ⊆ rhs_rel[rhs_cols]`.
    pub fn ind(
        mut self,
        lhs_rel: &str,
        lhs_cols: impl IntoIterator<Item = impl AsRef<str>>,
        rhs_rel: &str,
        rhs_cols: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> IrResult<Self> {
        let lr = self.catalog.require(lhs_rel)?;
        let rr = self.catalog.require(rhs_rel)?;
        let lc: IrResult<Vec<usize>> = lhs_cols
            .into_iter()
            .map(|a| self.col(lr, a.as_ref()))
            .collect();
        let rc: IrResult<Vec<usize>> = rhs_cols
            .into_iter()
            .map(|a| self.col(rr, a.as_ref()))
            .collect();
        let ind = Ind::new(lr, lc?, rr, rc?);
        validate::validate_ind(&ind, self.catalog)?;
        self.deps.push(ind);
        Ok(self)
    }

    /// Finishes the set.
    pub fn build(self) -> DependencySet {
        self.deps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::VarKind;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("EMP", ["eno", "sal", "dept"]).unwrap();
        c.declare("DEP", ["dno", "loc"]).unwrap();
        c
    }

    #[test]
    fn build_intro_query() {
        let c = cat();
        let q = QueryBuilder::new("Q1", &c)
            .head_vars(["e"])
            .atom("EMP", ["e", "s", "d"])
            .unwrap()
            .atom("DEP", ["d", "l"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.vars.len(), 4);
        let e = q.vars.resolve("e").unwrap();
        assert_eq!(q.vars.kind(e), VarKind::Distinguished);
        let d = q.vars.resolve("d").unwrap();
        assert_eq!(q.vars.kind(d), VarKind::Existential);
        // Shared variable `d` links the two atoms.
        assert_eq!(q.atoms[0].terms[2], q.atoms[1].terms[0]);
    }

    #[test]
    fn constants_in_atoms() {
        let c = cat();
        let q = QueryBuilder::new("Q", &c)
            .head_vars(["e"])
            .atom(
                "EMP",
                [TermSpec::from("e"), TermSpec::from(100), "d".into()],
            )
            .unwrap()
            .build()
            .unwrap();
        assert!(q.atoms[0].terms[1].is_const());
    }

    #[test]
    fn unknown_relation_rejected() {
        let c = cat();
        assert!(QueryBuilder::new("Q", &c)
            .head_vars(["x"])
            .atom("NOPE", ["x"])
            .is_err());
    }

    #[test]
    fn deps_builder_with_positions() {
        let c = cat();
        let sigma = DependencySetBuilder::new(&c)
            .fd("EMP", ["#1"], "#2")
            .unwrap()
            .ind("EMP", ["#3"], "DEP", ["#1"])
            .unwrap()
            .build();
        assert_eq!(sigma.len(), 2);
        let fd = sigma.fds().next().unwrap();
        assert_eq!(fd.lhs, vec![0]);
        assert_eq!(fd.rhs, 1);
        let ind = sigma.inds().next().unwrap();
        assert_eq!(ind.lhs_cols, vec![2]);
        assert_eq!(ind.rhs_cols, vec![0]);
    }

    #[test]
    fn deps_builder_bad_position() {
        let c = cat();
        assert!(DependencySetBuilder::new(&c)
            .fd("EMP", ["#9"], "#1")
            .is_err());
        assert!(DependencySetBuilder::new(&c)
            .fd("EMP", ["#0"], "#1")
            .is_err());
        assert!(DependencySetBuilder::new(&c)
            .ind("EMP", ["nope"], "DEP", ["dno"])
            .is_err());
    }

    #[test]
    fn head_constant() {
        let c = cat();
        let q = QueryBuilder::new("Q", &c)
            .head([TermSpec::from("e"), TermSpec::from(1)])
            .atom("EMP", ["e", "s", "d"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(q.output_arity(), 2);
    }
}
