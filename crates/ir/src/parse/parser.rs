//! Recursive-descent parser over [`Lexer`] tokens.

use crate::catalog::{RelId, RelationSchema};
use crate::deps::{Fd, Ind};
use crate::error::{IrError, IrResult};
use crate::query::{Atom, ConjunctiveQuery, VarKind, VarTable};
use crate::term::{Constant, Term};
use crate::validate;

use super::lexer::{Lexer, Token, TokenKind};
use super::Program;

pub(super) struct Parser {
    lx: Lexer,
    prog: Program,
}

impl Parser {
    pub(super) fn new(src: &str) -> IrResult<Self> {
        Ok(Parser {
            lx: Lexer::new(src)?,
            prog: Program::default(),
        })
    }

    pub(super) fn program(mut self) -> IrResult<Program> {
        while !self.lx.at_eof() {
            self.item()?;
        }
        Ok(self.prog)
    }

    fn unexpected(&self, tok: &Token, expected: &str) -> IrError {
        IrError::Parse {
            span: tok.span,
            message: format!("expected {expected}, found {}", tok.kind.describe()),
        }
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> IrResult<Token> {
        let tok = self.lx.next();
        if &tok.kind == kind {
            Ok(tok)
        } else {
            Err(self.unexpected(&tok, expected))
        }
    }

    fn ident(&mut self, expected: &str) -> IrResult<(String, Token)> {
        let tok = self.lx.next();
        match &tok.kind {
            TokenKind::Ident(s) => Ok((s.clone(), tok.clone())),
            _ => Err(self.unexpected(&tok, expected)),
        }
    }

    fn item(&mut self) -> IrResult<()> {
        let (head, head_tok) = self.ident("`relation`, `fd`, `ind` or a query name")?;
        match head.as_str() {
            "relation" => self.relation_decl(),
            "fd" => self.fd_decl(),
            "ind" => self.ind_decl(),
            _ => self.query_decl(head, head_tok),
        }
    }

    fn relation_decl(&mut self) -> IrResult<()> {
        let (name, _) = self.ident("a relation name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut attrs = Vec::new();
        if self.lx.peek().kind != TokenKind::RParen {
            loop {
                let (a, _) = self.ident("an attribute name")?;
                attrs.push(a);
                if self.lx.peek().kind == TokenKind::Comma {
                    self.lx.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::Dot, "`.`")?;
        self.prog
            .catalog
            .add_relation(RelationSchema::new(name, attrs)?)?;
        Ok(())
    }

    /// One attribute reference: a name or a 1-based position.
    fn attr(&mut self, rel: RelId) -> IrResult<usize> {
        let tok = self.lx.next();
        let schema = self.prog.catalog.schema(rel);
        match &tok.kind {
            TokenKind::Ident(name) => {
                schema
                    .column_of(name)
                    .ok_or_else(|| IrError::UnknownAttribute {
                        relation: schema.name().to_owned(),
                        attribute: name.clone(),
                    })
            }
            TokenKind::Int(k) => {
                if *k >= 1 && (*k as usize) <= schema.arity() {
                    Ok(*k as usize - 1)
                } else {
                    Err(IrError::UnknownAttribute {
                        relation: schema.name().to_owned(),
                        attribute: format!("#{k}"),
                    })
                }
            }
            _ => Err(self.unexpected(&tok, "an attribute name or position")),
        }
    }

    fn attr_list(&mut self, rel: RelId, terminator: &TokenKind) -> IrResult<Vec<usize>> {
        let mut cols = Vec::new();
        loop {
            cols.push(self.attr(rel)?);
            if self.lx.peek().kind == TokenKind::Comma {
                self.lx.next();
            } else {
                break;
            }
        }
        if &self.lx.peek().kind != terminator {
            let tok = self.lx.next();
            return Err(self.unexpected(&tok, &terminator.describe()));
        }
        Ok(cols)
    }

    fn fd_decl(&mut self) -> IrResult<()> {
        let (rel_name, _) = self.ident("a relation name")?;
        let rel = self.prog.catalog.require(&rel_name)?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let lhs = self.attr_list(rel, &TokenKind::Arrow)?;
        self.expect(&TokenKind::Arrow, "`->`")?;
        let rhs = self.attr(rel)?;
        self.expect(&TokenKind::Dot, "`.`")?;
        let fd = Fd::new(rel, lhs, rhs);
        validate::validate_fd(&fd, &self.prog.catalog)?;
        self.prog.deps.push(fd);
        Ok(())
    }

    fn ind_decl(&mut self) -> IrResult<()> {
        let (l_name, _) = self.ident("a relation name")?;
        let lhs_rel = self.prog.catalog.require(&l_name)?;
        self.expect(&TokenKind::LBracket, "`[`")?;
        let lhs_cols = self.attr_list(lhs_rel, &TokenKind::RBracket)?;
        self.expect(&TokenKind::RBracket, "`]`")?;
        self.expect(&TokenKind::SubsetEq, "`<=`")?;
        let (r_name, _) = self.ident("a relation name")?;
        let rhs_rel = self.prog.catalog.require(&r_name)?;
        self.expect(&TokenKind::LBracket, "`[`")?;
        let rhs_cols = self.attr_list(rhs_rel, &TokenKind::RBracket)?;
        self.expect(&TokenKind::RBracket, "`]`")?;
        self.expect(&TokenKind::Dot, "`.`")?;
        let ind = Ind::new(lhs_rel, lhs_cols, rhs_rel, rhs_cols);
        validate::validate_ind(&ind, &self.prog.catalog)?;
        self.prog.deps.push(ind);
        Ok(())
    }

    /// One term of a head or atom, interning variables into `vars`.
    fn term(&mut self, vars: &mut VarTable, kind_if_new: VarKind) -> IrResult<Term> {
        let tok = self.lx.next();
        match &tok.kind {
            TokenKind::Ident(name) => {
                let v = vars
                    .resolve(name)
                    .unwrap_or_else(|| vars.push(name.clone(), kind_if_new));
                Ok(Term::Var(v))
            }
            TokenKind::Int(i) => Ok(Term::Const(Constant::int(*i))),
            TokenKind::Str(s) => Ok(Term::Const(Constant::str(s))),
            _ => Err(self.unexpected(&tok, "a variable or constant")),
        }
    }

    fn term_list(&mut self, vars: &mut VarTable, kind_if_new: VarKind) -> IrResult<Vec<Term>> {
        let mut terms = Vec::new();
        if self.lx.peek().kind != TokenKind::RParen {
            loop {
                terms.push(self.term(vars, kind_if_new)?);
                if self.lx.peek().kind == TokenKind::Comma {
                    self.lx.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(terms)
    }

    fn query_decl(&mut self, name: String, head_tok: Token) -> IrResult<()> {
        let mut vars = VarTable::new();
        self.expect(&TokenKind::LParen, "`(`")?;
        let head = self.term_list(&mut vars, VarKind::Distinguished)?;
        // `R(1, 2).` — a ground fact rather than a query.
        if self.lx.peek().kind == TokenKind::Dot {
            self.lx.next();
            return self.register_fact(name, head, &vars, head_tok);
        }
        self.expect(&TokenKind::Turnstile, "`:-`")?;
        let mut atoms = Vec::new();
        loop {
            let (rel_name, _) = self.ident("a relation name")?;
            let rel = self.prog.catalog.require(&rel_name)?;
            self.expect(&TokenKind::LParen, "`(`")?;
            let terms = self.term_list(&mut vars, VarKind::Existential)?;
            atoms.push(Atom::new(rel, terms));
            if self.lx.peek().kind == TokenKind::Comma {
                self.lx.next();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::Dot, "`.`")?;
        let q = ConjunctiveQuery {
            name,
            head,
            atoms,
            vars,
        };
        validate::validate_query(&q, &self.prog.catalog)?;
        self.prog.register_query(q)
    }

    /// A ground fact `R(c1, …, cn).`: the "head" must be all constants
    /// and match the relation's arity.
    fn register_fact(
        &mut self,
        rel_name: String,
        terms: Vec<Term>,
        vars: &VarTable,
        head_tok: Token,
    ) -> IrResult<()> {
        let rel = self.prog.catalog.require(&rel_name)?;
        let arity = self.prog.catalog.arity(rel);
        if terms.len() != arity {
            return Err(IrError::ArityMismatch {
                relation: rel_name,
                expected: arity,
                found: terms.len(),
            });
        }
        let mut consts = Vec::with_capacity(terms.len());
        for t in terms {
            match t {
                Term::Const(c) => consts.push(c),
                Term::Var(v) => {
                    return Err(IrError::Parse {
                        span: head_tok.span,
                        message: format!(
                            "fact for `{rel_name}` contains variable `{}` (facts must be ground)",
                            vars.name(v)
                        ),
                    });
                }
            }
        }
        self.prog.facts.push((rel, consts));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse_program;
    use crate::error::IrError;

    #[test]
    fn missing_dot() {
        assert!(matches!(
            parse_program("relation R(a)"),
            Err(IrError::Parse { .. })
        ));
    }

    #[test]
    fn fd_requires_declared_relation() {
        assert!(matches!(
            parse_program("fd R: a -> b."),
            Err(IrError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn ind_unknown_attribute() {
        assert!(matches!(
            parse_program("relation R(a). ind R[zzz] <= R[a]."),
            Err(IrError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn attr_position_out_of_range() {
        assert!(matches!(
            parse_program("relation R(a). fd R: 2 -> 1."),
            Err(IrError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn query_body_required() {
        assert!(matches!(
            parse_program("relation R(a). Q(x) :- ."),
            Err(IrError::Parse { .. })
        ));
    }

    #[test]
    fn empty_input_ok() {
        let p = parse_program("  // nothing\n").unwrap();
        assert!(p.catalog.is_empty());
        assert!(p.deps.is_empty());
        assert!(p.queries.is_empty());
    }
}
