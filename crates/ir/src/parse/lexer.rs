//! Hand-rolled lexer for the surface language.

use crate::error::{IrError, IrResult, Span};

/// The kinds of token the parser consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (`EMP`, `x`, `relation`, ...). Keywords are resolved
    /// by the parser.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A quoted string literal (quotes stripped, escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `:-`
    Turnstile,
    /// `<=` or `⊆`
    SubsetEq,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::Turnstile => "`:-`".into(),
            TokenKind::SubsetEq => "`<=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Tokenizes a full source string up front (inputs are small).
pub struct Lexer {
    tokens: Vec<Token>,
    pos: usize,
}

impl Lexer {
    /// Tokenizes `src`, failing on the first invalid character.
    pub fn new(src: &str) -> IrResult<Self> {
        let mut tokens = Vec::new();
        let bytes = src.as_bytes();
        let mut i = 0usize;
        let mut line: u32 = 1;
        let mut line_start = 0usize;
        macro_rules! span_at {
            ($start:expr, $end:expr) => {
                Span {
                    start: $start,
                    end: $end,
                    line,
                    col: ($start - line_start) as u32 + 1,
                }
            };
        }
        while i < bytes.len() {
            let b = bytes[i];
            match b {
                b'\n' => {
                    i += 1;
                    line += 1;
                    line_start = i;
                }
                b' ' | b'\t' | b'\r' => i += 1,
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
                b'(' => {
                    tokens.push(Token {
                        kind: TokenKind::LParen,
                        span: span_at!(i, i + 1),
                    });
                    i += 1;
                }
                b')' => {
                    tokens.push(Token {
                        kind: TokenKind::RParen,
                        span: span_at!(i, i + 1),
                    });
                    i += 1;
                }
                b'[' => {
                    tokens.push(Token {
                        kind: TokenKind::LBracket,
                        span: span_at!(i, i + 1),
                    });
                    i += 1;
                }
                b']' => {
                    tokens.push(Token {
                        kind: TokenKind::RBracket,
                        span: span_at!(i, i + 1),
                    });
                    i += 1;
                }
                b',' => {
                    tokens.push(Token {
                        kind: TokenKind::Comma,
                        span: span_at!(i, i + 1),
                    });
                    i += 1;
                }
                b'.' => {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        span: span_at!(i, i + 1),
                    });
                    i += 1;
                }
                b':' if bytes.get(i + 1) == Some(&b'-') => {
                    tokens.push(Token {
                        kind: TokenKind::Turnstile,
                        span: span_at!(i, i + 2),
                    });
                    i += 2;
                }
                b':' => {
                    tokens.push(Token {
                        kind: TokenKind::Colon,
                        span: span_at!(i, i + 1),
                    });
                    i += 1;
                }
                b'-' if bytes.get(i + 1) == Some(&b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        span: span_at!(i, i + 2),
                    });
                    i += 2;
                }
                b'<' if bytes.get(i + 1) == Some(&b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::SubsetEq,
                        span: span_at!(i, i + 2),
                    });
                    i += 2;
                }
                b'"' | b'\'' => {
                    let quote = b;
                    let start = i;
                    i += 1;
                    let mut s = String::new();
                    let mut closed = false;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' if i + 1 < bytes.len() => {
                                // The escaped character may be multi-byte.
                                let ch = src[i + 1..].chars().next().unwrap();
                                s.push(ch);
                                i += 1 + ch.len_utf8();
                            }
                            c if c == quote => {
                                i += 1;
                                closed = true;
                                break;
                            }
                            b'\n' => break,
                            _ => {
                                // Copy the full UTF-8 character.
                                let ch_start = i;
                                let ch = src[ch_start..].chars().next().unwrap();
                                s.push(ch);
                                i += ch.len_utf8();
                            }
                        }
                    }
                    if !closed {
                        return Err(IrError::Lex {
                            span: span_at!(start, i),
                            message: "unterminated string literal".into(),
                        });
                    }
                    tokens.push(Token {
                        kind: TokenKind::Str(s),
                        span: span_at!(start, i),
                    });
                }
                b'-' | b'0'..=b'9' => {
                    let start = i;
                    if b == b'-' {
                        i += 1;
                        if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                            return Err(IrError::Lex {
                                span: span_at!(start, i),
                                message: "`-` must start a number or `->`".into(),
                            });
                        }
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let value = text.parse::<i64>().map_err(|_| IrError::Lex {
                        span: span_at!(start, i),
                        message: format!("integer `{text}` out of range"),
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Int(value),
                        span: span_at!(start, i),
                    });
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident(src[start..i].to_owned()),
                        span: span_at!(start, i),
                    });
                }
                _ => {
                    // Accept the Unicode subset sign as `<=`.
                    let ch = src[i..].chars().next().unwrap();
                    if ch == '⊆' {
                        let len = ch.len_utf8();
                        tokens.push(Token {
                            kind: TokenKind::SubsetEq,
                            span: span_at!(i, i + len),
                        });
                        i += len;
                    } else {
                        return Err(IrError::Lex {
                            span: span_at!(i, i + ch.len_utf8()),
                            message: format!("unexpected character `{ch}`"),
                        });
                    }
                }
            }
        }
        tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span {
                start: src.len(),
                end: src.len(),
                line,
                col: (src.len() - line_start) as u32 + 1,
            },
        });
        Ok(Lexer { tokens, pos: 0 })
    }

    /// The current token without consuming it.
    pub fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    /// Consumes and returns the current token.
    #[allow(clippy::should_implement_trait)] // not an Iterator: Eof repeats forever
    pub fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    /// Whether the next token is `Eof`.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut lx = Lexer::new(src).unwrap();
        let mut out = Vec::new();
        loop {
            let t = lx.next();
            let done = t.kind == TokenKind::Eof;
            out.push(t.kind);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("R(a, b) :- <= -> : . [ ]");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("R".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::Turnstile,
                TokenKind::SubsetEq,
                TokenKind::Arrow,
                TokenKind::Colon,
                TokenKind::Dot,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let k = kinds(r#"42 -7 "hi" 'there'"#);
        assert_eq!(
            k,
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Str("hi".into()),
                TokenKind::Str("there".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("a // comment with ( tokens .\nb");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unicode_subset() {
        let k = kinds("R ⊆ S");
        assert_eq!(k[1], TokenKind::SubsetEq);
    }

    #[test]
    fn line_tracking() {
        let mut lx = Lexer::new("a\n  b").unwrap();
        let a = lx.next();
        assert_eq!((a.span.line, a.span.col), (1, 1));
        let b = lx.next();
        assert_eq!((b.span.line, b.span.col), (2, 3));
    }

    #[test]
    fn unterminated_string() {
        assert!(matches!(Lexer::new("\"oops"), Err(IrError::Lex { .. })));
    }

    #[test]
    fn lone_dash_rejected() {
        assert!(Lexer::new("a - b").is_err());
    }

    #[test]
    fn string_escapes() {
        let k = kinds(r#""a\"b""#);
        assert_eq!(k[0], TokenKind::Str("a\"b".into()));
    }

    #[test]
    fn multibyte_escape_does_not_split_codepoints() {
        // Regression (found by fuzzing): an escaped multi-byte character
        // must advance past the whole codepoint.
        let k = kinds("\"a\\→b\"");
        assert_eq!(k[0], TokenKind::Str("a→b".into()));
    }
}
