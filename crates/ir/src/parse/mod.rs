//! Surface language for schemas, dependencies and queries.
//!
//! The grammar, one statement per item, each terminated by `.`:
//!
//! ```text
//! relation EMP(eno, sal, dept).
//! fd EMP: eno -> sal.                 // attributes by name or 1-based index
//! ind EMP[dept] <= DEP[dno].          // inclusion dependency R[X] ⊆ S[Y]
//! Q1(e) :- EMP(e, s, d), DEP(d, l).   // conjunctive query
//! EMP(7, 100, "sales").               // ground fact (all constants)
//! ```
//!
//! Inside query bodies, bare identifiers are variables (head variables are
//! the distinguished ones), integers and quoted strings are constants.
//! `//` starts a line comment. Output of [`crate::display`] parses back to
//! an equal object.

mod lexer;
mod parser;

use std::collections::HashMap;

use crate::catalog::{Catalog, RelId};
use crate::deps::DependencySet;
use crate::error::IrResult;
use crate::query::ConjunctiveQuery;
use crate::term::Constant;

pub use lexer::{Lexer, Token, TokenKind};

/// The result of parsing a full program: a catalog, the dependency set Σ,
/// every declared query, and any ground facts.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The declared relations.
    pub catalog: Catalog,
    /// All declared dependencies, in declaration order.
    pub deps: DependencySet,
    /// All declared queries, in declaration order.
    pub queries: Vec<ConjunctiveQuery>,
    /// Ground facts (`R(1, "x").`), in declaration order.
    pub facts: Vec<(RelId, Vec<Constant>)>,
    by_name: HashMap<String, usize>,
}

impl Program {
    pub(crate) fn register_query(&mut self, q: ConjunctiveQuery) -> IrResult<()> {
        if self.by_name.contains_key(&q.name) {
            return Err(crate::error::IrError::DuplicateQuery {
                name: q.name.clone(),
            });
        }
        self.by_name.insert(q.name.clone(), self.queries.len());
        self.queries.push(q);
        Ok(())
    }

    /// Looks a query up by name.
    pub fn query(&self, name: &str) -> Option<&ConjunctiveQuery> {
        self.by_name.get(name).map(|&i| &self.queries[i])
    }
}

/// Parses a whole program. See the module docs for the grammar.
pub fn parse_program(src: &str) -> IrResult<Program> {
    parser::Parser::new(src)?.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display;
    use crate::term::Term;

    const INTRO: &str = r#"
        // The paper's Section 1 example schema.
        relation EMP(eno, sal, dept).
        relation DEP(dno, loc).
        ind EMP[dept] <= DEP[dno].
        Q1(e) :- EMP(e, s, d), DEP(d, l).
        Q2(e) :- EMP(e, s, d).
    "#;

    #[test]
    fn parse_intro_example() {
        let p = parse_program(INTRO).unwrap();
        assert_eq!(p.catalog.len(), 2);
        assert_eq!(p.deps.len(), 1);
        assert_eq!(p.queries.len(), 2);
        let q1 = p.query("Q1").unwrap();
        assert_eq!(q1.num_atoms(), 2);
        assert_eq!(q1.output_arity(), 1);
        assert!(p.query("Q3").is_none());
    }

    #[test]
    fn roundtrip_through_display() {
        let p = parse_program(INTRO).unwrap();
        let text = format!(
            "{}\n{}\n{}\n{}",
            display::catalog(&p.catalog),
            display::deps(&p.deps, &p.catalog),
            display::query(&p.queries[0], &p.catalog),
            display::query(&p.queries[1], &p.catalog),
        );
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p2.catalog, p.catalog);
        assert_eq!(p2.deps, p.deps);
        assert_eq!(p2.queries.len(), p.queries.len());
        for (a, b) in p.queries.iter().zip(&p2.queries) {
            assert_eq!(a.head, b.head);
            assert_eq!(a.atoms, b.atoms);
        }
    }

    #[test]
    fn attribute_positions() {
        let p = parse_program("relation R(a, b, c). fd R: 2 -> 1. ind R[2] <= R[1].").unwrap();
        let fd = p.deps.fds().next().unwrap();
        assert_eq!(fd.lhs, vec![1]);
        assert_eq!(fd.rhs, 0);
        let ind = p.deps.inds().next().unwrap();
        assert_eq!(ind.lhs_cols, vec![1]);
        assert_eq!(ind.rhs_cols, vec![0]);
    }

    #[test]
    fn constants_in_query() {
        let p = parse_program(r#"relation R(a, b). Q(x) :- R(x, 7), R(x, "lbl")."#).unwrap();
        let q = p.query("Q").unwrap();
        assert!(q.atoms[0].terms[1].is_const());
        assert!(q.atoms[1].terms[1].is_const());
    }

    #[test]
    fn boolean_query() {
        let p = parse_program("relation R(a). Q() :- R(x).").unwrap();
        assert!(p.query("Q").unwrap().is_boolean());
    }

    #[test]
    fn constant_in_head() {
        let p = parse_program("relation R(a, b). Q(x, 3) :- R(x, y).").unwrap();
        let q = p.query("Q").unwrap();
        assert_eq!(q.output_arity(), 2);
        assert!(matches!(q.head[1], Term::Const(_)));
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_program("relation R(a)\nQ(x) :- R(x).").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error"), "{msg}");
    }

    #[test]
    fn duplicate_query_rejected() {
        let err = parse_program("relation R(a). Q(x) :- R(x). Q(y) :- R(y).").unwrap_err();
        assert!(matches!(err, crate::error::IrError::DuplicateQuery { .. }));
    }

    #[test]
    fn unknown_relation_in_query() {
        let err = parse_program("relation R(a). Q(x) :- S(x).").unwrap_err();
        assert!(matches!(err, crate::error::IrError::UnknownRelation { .. }));
    }

    #[test]
    fn arity_mismatch_detected() {
        let err = parse_program("relation R(a, b). Q(x) :- R(x).").unwrap_err();
        assert!(matches!(err, crate::error::IrError::ArityMismatch { .. }));
    }

    #[test]
    fn ground_facts_parse() {
        let p = parse_program(
            r#"relation R(a, b).
               R(1, 2).
               R(3, "x").
               Q(x) :- R(x, y)."#,
        )
        .unwrap();
        assert_eq!(p.facts.len(), 2);
        assert_eq!(p.queries.len(), 1);
        let (rel, consts) = &p.facts[1];
        assert_eq!(p.catalog.name(*rel), "R");
        assert_eq!(consts[1], crate::term::Constant::str("x"));
    }

    #[test]
    fn fact_with_variable_rejected() {
        let err = parse_program("relation R(a). R(x).").unwrap_err();
        assert!(matches!(err, crate::error::IrError::Parse { .. }), "{err}");
    }

    #[test]
    fn fact_arity_checked() {
        let err = parse_program("relation R(a, b). R(1).").unwrap_err();
        assert!(matches!(err, crate::error::IrError::ArityMismatch { .. }));
    }

    #[test]
    fn subset_symbol_accepted() {
        let p = parse_program("relation R(a, b). ind R[a] ⊆ R[b].").unwrap();
        assert_eq!(p.deps.num_inds(), 1);
    }
}
