//! Pretty-printing of IR objects in the surface-language syntax.
//!
//! Rendering needs a [`Catalog`] to turn ids back into names, so the
//! `Display` implementations live on small wrapper types produced by the
//! free functions here: `println!("{}", display::query(&q, &cat))`.
//! Output round-trips through [`crate::parse`].

use std::fmt;

use crate::catalog::Catalog;
use crate::deps::{Dependency, DependencySet, Fd, Ind};
use crate::query::ConjunctiveQuery;
use crate::term::Term;

/// Displayable wrapper for a query.
pub struct QueryDisplay<'a> {
    q: &'a ConjunctiveQuery,
    cat: &'a Catalog,
}

/// Displayable wrapper for an FD.
pub struct FdDisplay<'a> {
    fd: &'a Fd,
    cat: &'a Catalog,
}

/// Displayable wrapper for an IND.
pub struct IndDisplay<'a> {
    ind: &'a Ind,
    cat: &'a Catalog,
}

/// Displayable wrapper for a whole dependency set.
pub struct DepsDisplay<'a> {
    deps: &'a DependencySet,
    cat: &'a Catalog,
}

/// Renders `q` in `Q(x, y) :- R(x, z), S(z, y).` syntax.
pub fn query<'a>(q: &'a ConjunctiveQuery, cat: &'a Catalog) -> QueryDisplay<'a> {
    QueryDisplay { q, cat }
}

/// Renders `fd R: a, b -> c.`.
pub fn fd<'a>(fd: &'a Fd, cat: &'a Catalog) -> FdDisplay<'a> {
    FdDisplay { fd, cat }
}

/// Renders `ind R[a, b] <= S[x, y].`.
pub fn ind<'a>(ind: &'a Ind, cat: &'a Catalog) -> IndDisplay<'a> {
    IndDisplay { ind, cat }
}

/// Renders every dependency of Σ, one per line.
pub fn deps<'a>(deps: &'a DependencySet, cat: &'a Catalog) -> DepsDisplay<'a> {
    DepsDisplay { deps, cat }
}

fn write_term(f: &mut fmt::Formatter<'_>, t: &Term, q: &ConjunctiveQuery) -> fmt::Result {
    match t {
        Term::Const(c) => write!(f, "{c}"),
        Term::Var(v) => write!(f, "{}", q.vars.name(*v)),
    }
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.q.name)?;
        for (i, t) in self.q.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write_term(f, t, self.q)?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.q.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.cat.name(atom.relation))?;
            for (j, t) in atom.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write_term(f, t, self.q)?;
            }
            write!(f, ")")?;
        }
        write!(f, ".")
    }
}

impl fmt::Display for FdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let schema = self.cat.schema(self.fd.relation);
        write!(f, "fd {}: ", schema.name())?;
        for (i, &c) in self.fd.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", schema.attribute(c))?;
        }
        write!(f, " -> {}.", schema.attribute(self.fd.rhs))
    }
}

impl fmt::Display for IndDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = self.cat.schema(self.ind.lhs_rel);
        let r = self.cat.schema(self.ind.rhs_rel);
        write!(f, "ind {}[", l.name())?;
        for (i, &c) in self.ind.lhs_cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", l.attribute(c))?;
        }
        write!(f, "] <= {}[", r.name())?;
        for (i, &c) in self.ind.rhs_cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", r.attribute(c))?;
        }
        write!(f, "].")
    }
}

impl fmt::Display for DepsDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.deps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            match d {
                Dependency::Fd(x) => write!(f, "{}", fd(x, self.cat))?,
                Dependency::Ind(x) => write!(f, "{}", ind(x, self.cat))?,
            }
        }
        Ok(())
    }
}

/// Renders a whole catalog as `relation R(a, b);` declarations.
pub struct CatalogDisplay<'a> {
    cat: &'a Catalog,
}

/// Renders the catalog's declarations.
pub fn catalog(cat: &Catalog) -> CatalogDisplay<'_> {
    CatalogDisplay { cat }
}

impl fmt::Display for CatalogDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (_, schema)) in self.cat.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "relation {}(", schema.name())?;
            for (j, a) in schema.attributes().iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ").")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DependencySetBuilder, QueryBuilder};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("EMP", ["eno", "sal", "dept"]).unwrap();
        c.declare("DEP", ["dno", "loc"]).unwrap();
        c
    }

    #[test]
    fn render_query() {
        let c = cat();
        let q = QueryBuilder::new("Q1", &c)
            .head_vars(["e"])
            .atom("EMP", ["e", "s", "d"])
            .unwrap()
            .atom("DEP", ["d", "l"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            query(&q, &c).to_string(),
            "Q1(e) :- EMP(e, s, d), DEP(d, l)."
        );
    }

    #[test]
    fn render_deps() {
        let c = cat();
        let sigma = DependencySetBuilder::new(&c)
            .fd("EMP", ["eno"], "sal")
            .unwrap()
            .ind("EMP", ["dept"], "DEP", ["dno"])
            .unwrap()
            .build();
        let s = deps(&sigma, &c).to_string();
        assert_eq!(s, "fd EMP: eno -> sal.\nind EMP[dept] <= DEP[dno].");
    }

    #[test]
    fn render_catalog() {
        let c = cat();
        assert_eq!(
            catalog(&c).to_string(),
            "relation EMP(eno, sal, dept).\nrelation DEP(dno, loc)."
        );
    }
}
