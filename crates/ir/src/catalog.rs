//! Relation schemas and the catalog (the paper's *database scheme*).

use std::collections::HashMap;

use crate::error::{IrError, IrResult};

/// Identifier of a relation within a [`Catalog`].
///
/// `RelId`s are dense indices assigned in declaration order, so they can be
/// used to index per-relation side tables (`Vec`s) everywhere downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The scheme of one relation: its name and the ordered list of attribute
/// names labelling its columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<String>,
}

impl RelationSchema {
    /// Creates a schema, rejecting repeated attribute names (the paper
    /// requires columns to be labelled by *distinct* attributes).
    pub fn new(
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> IrResult<Self> {
        let name = name.into();
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].contains(a) {
                return Err(IrError::DuplicateAttribute {
                    relation: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(RelationSchema { name, attributes })
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names in column order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Name of the attribute at 0-based `column`.
    pub fn attribute(&self, column: usize) -> &str {
        &self.attributes[column]
    }

    /// Resolves an attribute name to its 0-based column index.
    pub fn column_of(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }
}

/// A database scheme: the set of relation schemas queries and dependencies
/// are formulated against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Declares a relation, returning its id. Fails on duplicate names.
    pub fn add_relation(&mut self, schema: RelationSchema) -> IrResult<RelId> {
        if self.by_name.contains_key(schema.name()) {
            return Err(IrError::DuplicateRelation {
                name: schema.name().to_owned(),
            });
        }
        let id = RelId(self.relations.len() as u32);
        self.by_name.insert(schema.name().to_owned(), id);
        self.relations.push(schema);
        Ok(id)
    }

    /// Convenience: declare a relation from a name and attribute list.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> IrResult<RelId> {
        self.add_relation(RelationSchema::new(name, attributes)?)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The schema for `id`.
    pub fn schema(&self, id: RelId) -> &RelationSchema {
        &self.relations[id.index()]
    }

    /// The arity of relation `id`.
    pub fn arity(&self, id: RelId) -> usize {
        self.schema(id).arity()
    }

    /// The name of relation `id`.
    pub fn name(&self, id: RelId) -> &str {
        self.schema(id).name()
    }

    /// Looks a relation up by name.
    pub fn resolve(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Like [`Catalog::resolve`] but produces an [`IrError`] on failure.
    pub fn require(&self, name: &str) -> IrResult<RelId> {
        self.resolve(name).ok_or_else(|| IrError::UnknownRelation {
            name: name.to_owned(),
        })
    }

    /// Iterator over `(id, schema)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, s)| (RelId(i as u32), s))
    }

    /// All relation ids in declaration order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.relations.len() as u32).map(RelId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_resolve() {
        let mut cat = Catalog::new();
        let emp = cat.declare("EMP", ["eno", "sal", "dept"]).unwrap();
        let dep = cat.declare("DEP", ["dno", "loc"]).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.resolve("EMP"), Some(emp));
        assert_eq!(cat.resolve("DEP"), Some(dep));
        assert_eq!(cat.resolve("NOPE"), None);
        assert_eq!(cat.arity(emp), 3);
        assert_eq!(cat.name(dep), "DEP");
        assert_eq!(cat.schema(emp).column_of("dept"), Some(2));
        assert_eq!(cat.schema(emp).column_of("zzz"), None);
        assert_eq!(cat.schema(emp).attribute(1), "sal");
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut cat = Catalog::new();
        cat.declare("R", ["a"]).unwrap();
        let err = cat.declare("R", ["b"]).unwrap_err();
        assert!(matches!(err, IrError::DuplicateRelation { .. }));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = RelationSchema::new("R", ["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, IrError::DuplicateAttribute { .. }));
    }

    #[test]
    fn empty_catalog() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        assert!(cat.require("R").is_err());
    }

    #[test]
    fn zero_arity_relation_allowed() {
        let mut cat = Catalog::new();
        let r = cat.declare("UNIT", Vec::<String>::new()).unwrap();
        assert_eq!(cat.arity(r), 0);
    }

    #[test]
    fn iter_order_is_declaration_order() {
        let mut cat = Catalog::new();
        cat.declare("A", ["x"]).unwrap();
        cat.declare("B", ["y"]).unwrap();
        let names: Vec<&str> = cat.iter().map(|(_, s)| s.name()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
