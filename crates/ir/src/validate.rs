//! Structural validation of queries and dependency sets against a catalog.
//!
//! The constructors in this crate are shape-preserving; this module holds
//! the whole-object checks: arity agreement, column ranges, IND width
//! equality, head safety, and so on. Downstream engines may assume
//! validated inputs.

use crate::catalog::Catalog;
use crate::deps::{Dependency, DependencySet, Fd, Ind};
use crate::error::{IrError, IrResult};
use crate::query::ConjunctiveQuery;
use crate::term::Term;

/// Checks one FD against the catalog: relation exists, all columns in
/// range, non-trivial.
pub fn validate_fd(fd: &Fd, catalog: &Catalog) -> IrResult<()> {
    let arity = catalog.arity(fd.relation);
    let rel_name = || catalog.name(fd.relation).to_owned();
    for &c in fd.lhs.iter().chain(std::iter::once(&fd.rhs)) {
        if c >= arity {
            return Err(IrError::UnknownAttribute {
                relation: rel_name(),
                attribute: format!("#{}", c + 1),
            });
        }
    }
    if fd.is_trivial() {
        return Err(IrError::TrivialFd {
            relation: rel_name(),
        });
    }
    Ok(())
}

/// Checks one IND against the catalog: widths equal, all columns in range,
/// no repeated column on either side (the paper's attribute lists are
/// lists of *distinct* attributes).
pub fn validate_ind(ind: &Ind, catalog: &Catalog) -> IrResult<()> {
    if ind.lhs_cols.len() != ind.rhs_cols.len() {
        return Err(IrError::IndWidthMismatch {
            lhs: ind.lhs_cols.len(),
            rhs: ind.rhs_cols.len(),
        });
    }
    for (rel, cols) in [(ind.lhs_rel, &ind.lhs_cols), (ind.rhs_rel, &ind.rhs_cols)] {
        let arity = catalog.arity(rel);
        for (i, &c) in cols.iter().enumerate() {
            if c >= arity {
                return Err(IrError::UnknownAttribute {
                    relation: catalog.name(rel).to_owned(),
                    attribute: format!("#{}", c + 1),
                });
            }
            if cols[..i].contains(&c) {
                return Err(IrError::RepeatedColumn {
                    relation: catalog.name(rel).to_owned(),
                    column: c,
                });
            }
        }
    }
    Ok(())
}

/// Checks every dependency in Σ.
pub fn validate_deps(deps: &DependencySet, catalog: &Catalog) -> IrResult<()> {
    for d in deps.iter() {
        match d {
            Dependency::Fd(f) => validate_fd(f, catalog)?,
            Dependency::Ind(i) => validate_ind(i, catalog)?,
        }
    }
    Ok(())
}

/// Checks a conjunctive query against the catalog:
///
/// * every atom's arity matches its relation's scheme;
/// * every variable id is within the variable table;
/// * every head variable occurs in some conjunct (range restriction — the
///   paper's homomorphism semantics silently requires this for the
///   summary row image to be determined);
/// * head terms are DVs or constants (an NDV in the head is promoted to an
///   error rather than silently reinterpreted).
pub fn validate_query(q: &ConjunctiveQuery, catalog: &Catalog) -> IrResult<()> {
    let n_vars = q.vars.len() as u32;
    for atom in &q.atoms {
        let arity = catalog.arity(atom.relation);
        if atom.terms.len() != arity {
            return Err(IrError::ArityMismatch {
                relation: catalog.name(atom.relation).to_owned(),
                expected: arity,
                found: atom.terms.len(),
            });
        }
        for t in &atom.terms {
            if let Term::Var(v) = t {
                if v.0 >= n_vars {
                    return Err(IrError::DanglingVariable { index: v.0 });
                }
            }
        }
    }
    let body = q.body_vars();
    for t in &q.head {
        if let Term::Var(v) = t {
            if v.0 >= n_vars {
                return Err(IrError::DanglingVariable { index: v.0 });
            }
            if q.vars.kind(*v) != crate::query::VarKind::Distinguished {
                return Err(IrError::UnsafeHeadVariable {
                    query: q.name.clone(),
                    variable: q.vars.name(*v).to_owned(),
                });
            }
            if !body.contains(v) {
                return Err(IrError::UnsafeHeadVariable {
                    query: q.name.clone(),
                    variable: q.vars.name(*v).to_owned(),
                });
            }
        }
    }
    Ok(())
}

/// Checks that two queries can be compared for containment: identical
/// output arity.
pub fn validate_comparable(q: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> IrResult<()> {
    if q.output_arity() != q2.output_arity() {
        return Err(IrError::OutputSchemeMismatch {
            left: q.output_arity(),
            right: q2.output_arity(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::query::{Atom, VarKind, VarTable};
    use crate::term::{Constant, VarId};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x", "y", "z"]).unwrap();
        c
    }

    #[test]
    fn fd_column_range() {
        let c = cat();
        let r = c.resolve("R").unwrap();
        assert!(validate_fd(&Fd::new(r, vec![0], 1), &c).is_ok());
        assert!(validate_fd(&Fd::new(r, vec![5], 1), &c).is_err());
        assert!(validate_fd(&Fd::new(r, vec![0], 9), &c).is_err());
        assert!(matches!(
            validate_fd(&Fd::new(r, vec![1], 1), &c),
            Err(IrError::TrivialFd { .. })
        ));
    }

    #[test]
    fn ind_checks() {
        let c = cat();
        let r = c.resolve("R").unwrap();
        let s = c.resolve("S").unwrap();
        assert!(validate_ind(&Ind::new(r, vec![0, 1], s, vec![2, 0]), &c).is_ok());
        assert!(matches!(
            validate_ind(&Ind::new(r, vec![0], s, vec![0, 1]), &c),
            Err(IrError::IndWidthMismatch { .. })
        ));
        assert!(matches!(
            validate_ind(&Ind::new(r, vec![0, 0], s, vec![0, 1]), &c),
            Err(IrError::RepeatedColumn { .. })
        ));
        assert!(validate_ind(&Ind::new(r, vec![7], s, vec![0]), &c).is_err());
    }

    fn q_ok(c: &Catalog) -> ConjunctiveQuery {
        let r = c.resolve("R").unwrap();
        let mut vars = VarTable::new();
        let x = vars.push("x", VarKind::Distinguished);
        let y = vars.push("y", VarKind::Existential);
        ConjunctiveQuery {
            name: "Q".into(),
            head: vec![Term::Var(x)],
            atoms: vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
            vars,
        }
    }

    #[test]
    fn query_valid() {
        let c = cat();
        assert!(validate_query(&q_ok(&c), &c).is_ok());
    }

    #[test]
    fn query_arity_mismatch() {
        let c = cat();
        let mut q = q_ok(&c);
        q.atoms[0].terms.pop();
        assert!(matches!(
            validate_query(&q, &c),
            Err(IrError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn query_unsafe_head() {
        let c = cat();
        let mut q = q_ok(&c);
        // Head var that never occurs in the body.
        let z = q.vars.push("z", VarKind::Distinguished);
        q.head = vec![Term::Var(z)];
        assert!(matches!(
            validate_query(&q, &c),
            Err(IrError::UnsafeHeadVariable { .. })
        ));
    }

    #[test]
    fn query_ndv_in_head_rejected() {
        let c = cat();
        let mut q = q_ok(&c);
        let y = q.vars.resolve("y").unwrap();
        q.head = vec![Term::Var(y)];
        assert!(matches!(
            validate_query(&q, &c),
            Err(IrError::UnsafeHeadVariable { .. })
        ));
    }

    #[test]
    fn query_dangling_var() {
        let c = cat();
        let mut q = q_ok(&c);
        q.atoms[0].terms[1] = Term::Var(VarId(99));
        assert!(matches!(
            validate_query(&q, &c),
            Err(IrError::DanglingVariable { .. })
        ));
    }

    #[test]
    fn constant_head_ok() {
        let c = cat();
        let mut q = q_ok(&c);
        q.head.push(Term::Const(Constant::int(3)));
        assert!(validate_query(&q, &c).is_ok());
    }

    #[test]
    fn comparable() {
        let c = cat();
        let q = q_ok(&c);
        let mut q2 = q.clone();
        assert!(validate_comparable(&q, &q2).is_ok());
        q2.head.push(Term::Const(Constant::int(0)));
        assert!(validate_comparable(&q, &q2).is_err());
    }
}
