//! # cqchase-ir — relational intermediate representation
//!
//! This crate defines the formal objects of Johnson & Klug, *"Testing
//! Containment of Conjunctive Queries under Functional and Inclusion
//! Dependencies"* (PODS 1982 / JCSS 28, 1984), Section 2:
//!
//! * **Relation schemas and catalogs** ([`RelationSchema`], [`Catalog`]):
//!   a relation is a table with columns labelled by distinct attributes;
//!   a database scheme is the set of relation schemes.
//! * **Conjunctive queries** ([`ConjunctiveQuery`]): an input database
//!   scheme, an output relation scheme, distinguished variables (DVs),
//!   nondistinguished variables (NDVs), a set of conjuncts ([`Atom`]s) and
//!   a summary row whose entries are DVs or constants.
//! * **Functional dependencies** ([`Fd`]): statements `R: Z -> A`.
//! * **Inclusion dependencies** ([`Ind`]): statements `R[X] ⊆ S[Y]`,
//!   where `X` and `Y` are equal-length lists of attributes; the shared
//!   length is the *width* of the IND.
//! * A **surface language** ([`parse`]) and pretty-printer ([`display`])
//!   so that examples and experiments can be written as text.
//!
//! Everything downstream (the chase engines, containment tests, the
//! storage substrate and the workload generators) is expressed in terms of
//! these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod deps;
pub mod display;
pub mod error;
pub mod parse;
pub mod query;
pub mod term;
pub mod validate;

pub use builder::{DependencySetBuilder, QueryBuilder};
pub use catalog::{Catalog, RelId, RelationSchema};
pub use deps::{Dependency, DependencySet, Fd, Ind};
pub use error::{IrError, IrResult, Span};
pub use parse::{parse_program, Program};
pub use query::{Atom, ConjunctiveQuery, VarKind, VarTable};
pub use term::{Constant, Term, VarId};
