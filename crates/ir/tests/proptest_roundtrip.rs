//! Property tests: the pretty-printer and the parser are inverse on the
//! whole IR (catalogs, dependency sets, queries).

use cqchase_ir::{
    display, parse_program, Atom, Catalog, ConjunctiveQuery, DependencySet, Fd, Ind, RelId, Term,
    VarKind, VarTable,
};
use proptest::prelude::*;

/// A random catalog: 1–3 relations, arities 1–3, names `R0…`.
fn catalogs() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(1usize..=3, 1..=3).prop_map(|arities| {
        let mut c = Catalog::new();
        for (i, a) in arities.iter().enumerate() {
            c.declare(format!("R{i}"), (0..*a).map(|j| format!("c{j}")))
                .unwrap();
        }
        c
    })
}

/// A random valid query over `cat` built from index picks.
fn queries(cat: Catalog) -> impl Strategy<Value = (Catalog, ConjunctiveQuery)> {
    let n_rels = cat.len();
    let atom = (0..n_rels, proptest::collection::vec(0usize..4, 3));
    proptest::collection::vec(atom, 1..4).prop_map(move |raw| {
        let mut vars = VarTable::new();
        // DV first so the head is valid.
        let dv = vars.push("h", VarKind::Distinguished);
        let mut pool = vec![dv];
        let mut atoms = Vec::new();
        for (ri, picks) in &raw {
            let rel = RelId(*ri as u32);
            let arity = cat.arity(rel);
            let mut terms = Vec::with_capacity(arity);
            for k in 0..arity {
                let pick = picks[k % picks.len()];
                while pool.len() <= pick {
                    let v = vars.push(format!("v{}", pool.len()), VarKind::Existential);
                    pool.push(v);
                }
                terms.push(Term::Var(pool[pick]));
            }
            atoms.push(Atom::new(rel, terms));
        }
        // Force the DV into the first atom.
        atoms[0].terms[0] = Term::Var(dv);
        let q = ConjunctiveQuery {
            name: "Q".into(),
            head: vec![Term::Var(dv)],
            atoms,
            vars,
        };
        (cat.clone(), q)
    })
}

/// Random dependency sets over `cat` from index picks.
fn deps(cat: Catalog) -> impl Strategy<Value = (Catalog, DependencySet)> {
    let n_rels = cat.len();
    let dep = (any::<bool>(), 0..n_rels, 0usize..3, 0usize..3, 0..n_rels);
    proptest::collection::vec(dep, 0..4).prop_map(move |raw| {
        let mut out = DependencySet::new();
        for (is_fd, r1, c1, c2, r2) in raw {
            let rel1 = RelId(r1 as u32);
            let a1 = cat.arity(rel1);
            if is_fd {
                if a1 >= 2 {
                    let lhs = c1 % a1;
                    let rhs = c2 % a1;
                    if lhs != rhs {
                        out.push(Fd::new(rel1, vec![lhs], rhs));
                    }
                }
            } else {
                let rel2 = RelId(r2 as u32);
                let a2 = cat.arity(rel2);
                let ind = Ind::new(rel1, vec![c1 % a1], rel2, vec![c2 % a2]);
                if !ind.is_trivial() {
                    out.push(ind);
                }
            }
        }
        (cat.clone(), out)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn catalog_roundtrips(cat in catalogs()) {
        let text = display::catalog(&cat).to_string();
        let p = parse_program(&text).unwrap();
        prop_assert_eq!(p.catalog, cat);
    }

    #[test]
    fn query_roundtrips((cat, q) in catalogs().prop_flat_map(queries)) {
        let text = format!("{}\n{}", display::catalog(&cat), display::query(&q, &cat));
        let p = parse_program(&text).unwrap();
        let q2 = p.query("Q").unwrap();
        // Structure survives (names may re-intern in a different order,
        // but atoms/head compare equal because interning is
        // deterministic from the rendered text order... compare rendered
        // forms for robustness).
        prop_assert_eq!(
            display::query(q2, &p.catalog).to_string(),
            display::query(&q, &cat).to_string()
        );
        prop_assert_eq!(q2.num_atoms(), q.num_atoms());
        prop_assert_eq!(q2.output_arity(), q.output_arity());
    }

    #[test]
    fn deps_roundtrip((cat, sigma) in catalogs().prop_flat_map(deps)) {
        let text = format!("{}\n{}", display::catalog(&cat), display::deps(&sigma, &cat));
        let p = parse_program(&text).unwrap();
        prop_assert_eq!(p.deps, sigma);
    }

    #[test]
    fn validation_accepts_generated((cat, q) in catalogs().prop_flat_map(queries)) {
        prop_assert!(cqchase_ir::validate::validate_query(&q, &cat).is_ok());
    }

    /// The lexer never panics on arbitrary input (errors are typed).
    #[test]
    fn lexer_total(src in ".*") {
        let _ = cqchase_ir::parse::Lexer::new(&src);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(src in ".*") {
        let _ = parse_program(&src);
    }
}
