//! Coverage for the diagnostic surface: every error variant renders a
//! useful message, spans carry positions, and common user mistakes map
//! to the right variant.

use cqchase_ir::{parse_program, IrError, Span};

fn err_of(src: &str) -> IrError {
    parse_program(src).expect_err("program must be rejected")
}

#[test]
fn messages_name_the_culprit() {
    let cases: Vec<(&str, &str)> = vec![
        ("relation R(a). relation R(b).", "declared more than once"),
        ("relation R(a, a).", "more than once"),
        ("Q(x) :- S(x).", "unknown relation `S`"),
        ("relation R(a). fd R: zz -> a.", "no attribute"),
        ("relation R(a, b). fd R: a -> a.", "trivial"),
        (
            "relation R(a). relation S(x, y). ind R[1] <= S[1, 2].",
            "different widths",
        ),
        ("relation R(a, b). Q(x) :- R(x).", "2 columns but 1 terms"),
        ("relation R(a). Q(x) :- R(y).", "does not occur in the body"),
        (
            "relation R(a). Q(x) :- R(x). Q(y) :- R(y).",
            "declared more than once",
        ),
    ];
    for (src, needle) in cases {
        let msg = err_of(src).to_string();
        assert!(
            msg.contains(needle),
            "source `{src}` produced `{msg}` (wanted `{needle}`)"
        );
    }
}

#[test]
fn parse_errors_carry_line_and_column() {
    let err = err_of("relation R(a).\n  fd R a -> a.");
    match err {
        IrError::Parse { span, ref message } => {
            assert_eq!(span.line, 2, "{message}");
            assert!(span.col >= 3, "{span:?}");
            assert!(message.contains("expected"), "{message}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn lex_errors_carry_position() {
    let err = err_of("relation R(a).\n@");
    match err {
        IrError::Lex { span, .. } => assert_eq!(span.line, 2),
        other => panic!("expected Lex, got {other:?}"),
    }
}

#[test]
fn span_display() {
    let s = Span {
        start: 10,
        end: 12,
        line: 3,
        col: 4,
    };
    assert_eq!(s.to_string(), "3:4");
}

#[test]
fn errors_implement_std_error() {
    let err: Box<dyn std::error::Error> = Box::new(err_of("relation R(a). relation R(a)."));
    assert!(!err.to_string().is_empty());
}

#[test]
fn repeated_ind_column_rejected() {
    let msg = err_of("relation R(a, b). ind R[1, 1] <= R[1, 2].").to_string();
    assert!(msg.contains("repeats"), "{msg}");
}
