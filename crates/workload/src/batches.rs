//! Batch workload generators for the batch/parallel engines.
//!
//! A containment batch is a query pool plus a list of `(q, q_prime)`
//! index pairs (the shape `cqchase_core::check_batch` and
//! `cqchase_par::check_batch` consume — pairs are plain index tuples
//! here so this crate stays independent of `cqchase-core`). An
//! evaluation batch is a query pool to run against one instance.

use cqchase_ir::{parse_program, ConjunctiveQuery, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::queries::{chain_query, cycle_query, star_query};

/// A containment batch over the `successor_cycle` schema (`R(a, b)`
/// with the cyclic IND `R[2] ⊆ R[1]`).
#[derive(Debug)]
pub struct ContainmentBatch {
    /// The schema and dependency set (queries of the program itself are
    /// unused; the pool below is the workload).
    pub program: Program,
    /// The query pool: chains, cycles, and stars of assorted sizes.
    pub queries: Vec<ConjunctiveQuery>,
    /// `(q, q_prime)` index pairs into `queries`.
    pub pairs: Vec<(usize, usize)>,
}

/// Generates a deterministic containment batch: a pool of
/// `pool_size` shaped queries (round-robin chain/cycle/star, sizes
/// cycling 1–4) and `num_pairs` seeded-random ordered pairs.
///
/// Chains of length *k* are contained in chains of length ≥ *k* under
/// the cyclic IND and cycles never map into the chase (a path), so the
/// batch exercises positive answers at assorted witness levels *and*
/// exhaustive negatives — the containment engine's two cost regimes.
pub fn successor_containment_batch(
    seed: u64,
    pool_size: usize,
    num_pairs: usize,
) -> ContainmentBatch {
    let program = parse_program(
        "relation R(a, b).
         ind R[2] <= R[1].
         Q(x) :- R(x, y).",
    )
    .expect("the successor schema is well-formed");
    let mut queries = Vec::with_capacity(pool_size);
    for i in 0..pool_size {
        let size = i % 4 + 1;
        let q = match i % 3 {
            0 => chain_query(&format!("Chain{i}"), &program.catalog, "R", size),
            1 => cycle_query(&format!("Cycle{i}"), &program.catalog, "R", size + 1),
            _ => star_query(&format!("Star{i}"), &program.catalog, "R", size),
        }
        .expect("generated queries are well-formed");
        queries.push(q);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = (0..num_pairs)
        .map(|_| (rng.gen_range(0..pool_size), rng.gen_range(0..pool_size)))
        .collect();
    ContainmentBatch {
        program,
        queries,
        pairs,
    }
}

/// Generates a deterministic evaluation batch over a catalog's first
/// binary relation: `pool_size` chain/star queries of sizes cycling
/// 2–4 (size ≥ 2 keeps every query a genuine join).
pub fn chain_eval_batch(program: &Program, pool_size: usize) -> Vec<ConjunctiveQuery> {
    (0..pool_size)
        .map(|i| {
            let size = i % 3 + 2;
            if i % 2 == 0 {
                chain_query(&format!("EChain{i}"), &program.catalog, "R", size)
            } else {
                star_query(&format!("EStar{i}"), &program.catalog, "R", size)
            }
            .expect("generated queries are well-formed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_deterministic_and_in_range() {
        let a = successor_containment_batch(11, 9, 40);
        let b = successor_containment_batch(11, 9, 40);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.queries.len(), 9);
        assert_eq!(a.pairs.len(), 40);
        assert!(a.pairs.iter().all(|&(x, y)| x < 9 && y < 9));
        let names: Vec<&str> = a.queries.iter().map(|q| q.name.as_str()).collect();
        assert!(names.contains(&"Chain0"));
        assert!(names.contains(&"Cycle1"));
        assert!(names.contains(&"Star2"));
    }

    #[test]
    fn eval_batch_queries_are_joins() {
        let p = parse_program("relation R(a, b). Q(x) :- R(x, y).").unwrap();
        let qs = chain_eval_batch(&p, 6);
        assert_eq!(qs.len(), 6);
        assert!(qs.iter().all(|q| q.num_atoms() >= 2));
    }
}
