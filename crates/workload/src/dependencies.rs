//! Dependency-set generators: random INDs and random key-based schemas.

use cqchase_ir::{Catalog, DependencySet, Fd, Ind, RelId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Random IND-set generation over an existing catalog.
#[derive(Debug, Clone)]
pub struct IndSetGen {
    /// RNG seed.
    pub seed: u64,
    /// Number of INDs to produce.
    pub num_inds: usize,
    /// Exact width of each IND (must not exceed the smallest arity).
    pub width: usize,
    /// Restrict to *acyclic* INDs (relation ids strictly increase from
    /// left to right), guaranteeing a finite chase.
    pub acyclic: bool,
}

impl Default for IndSetGen {
    fn default() -> Self {
        IndSetGen {
            seed: 0,
            num_inds: 3,
            width: 1,
            acyclic: false,
        }
    }
}

impl IndSetGen {
    /// Generates the IND set. Widths wider than some relation's arity are
    /// clamped per IND side.
    pub fn generate(&self, catalog: &Catalog) -> DependencySet {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rels: Vec<RelId> = catalog.rel_ids().collect();
        assert!(!rels.is_empty());
        let mut out = DependencySet::new();
        let mut attempts = 0;
        while out.num_inds() < self.num_inds && attempts < self.num_inds * 50 {
            attempts += 1;
            let lhs = rels[rng.gen_range(0..rels.len())];
            let rhs = if self.acyclic {
                // Need a strictly larger relation id for acyclicity.
                let larger: Vec<RelId> = rels.iter().copied().filter(|r| *r > lhs).collect();
                if larger.is_empty() {
                    continue;
                }
                larger[rng.gen_range(0..larger.len())]
            } else {
                rels[rng.gen_range(0..rels.len())]
            };
            let w = self.width.min(catalog.arity(lhs)).min(catalog.arity(rhs));
            if w == 0 {
                continue;
            }
            let mut lhs_cols: Vec<usize> = (0..catalog.arity(lhs)).collect();
            lhs_cols.shuffle(&mut rng);
            lhs_cols.truncate(w);
            let mut rhs_cols: Vec<usize> = (0..catalog.arity(rhs)).collect();
            rhs_cols.shuffle(&mut rng);
            rhs_cols.truncate(w);
            let ind = Ind::new(lhs, lhs_cols, rhs, rhs_cols);
            if !ind.is_trivial() {
                out.push(ind);
            }
        }
        out
    }
}

/// Random FD-set generation over an existing catalog (the classical
/// workload for the FD chase).
#[derive(Debug, Clone)]
pub struct FdSetGen {
    /// RNG seed.
    pub seed: u64,
    /// Number of FDs to produce (fewer if the catalog cannot support
    /// them, e.g. all-unary relations).
    pub num_fds: usize,
    /// Maximum left-hand-side size (uniform in `1..=max_lhs`).
    pub max_lhs: usize,
}

impl Default for FdSetGen {
    fn default() -> Self {
        FdSetGen {
            seed: 0,
            num_fds: 2,
            max_lhs: 1,
        }
    }
}

impl FdSetGen {
    /// Generates the FD set (non-trivial FDs only).
    pub fn generate(&self, catalog: &Catalog) -> DependencySet {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rels: Vec<RelId> = catalog.rel_ids().collect();
        let mut out = DependencySet::new();
        let mut attempts = 0;
        while out.len() < self.num_fds && attempts < self.num_fds * 50 {
            attempts += 1;
            let rel = rels[rng.gen_range(0..rels.len())];
            let arity = catalog.arity(rel);
            if arity < 2 {
                continue;
            }
            let lhs_size = rng.gen_range(1..=self.max_lhs.min(arity - 1));
            let mut cols: Vec<usize> = (0..arity).collect();
            cols.shuffle(&mut rng);
            let lhs: Vec<usize> = cols[..lhs_size].to_vec();
            let rhs = cols[lhs_size];
            out.push(Fd::new(rel, lhs, rhs));
        }
        out
    }
}

/// Generates a whole **key-based** schema: a catalog plus Σ satisfying
/// the paper's conditions (a) and (b).
///
/// Every relation gets `key_width` leading key columns and
/// `nonkey_width` dependent columns; FDs `key → each non-key column`
/// realize condition (a). INDs go from non-key columns of one relation
/// into (a prefix of) the key of another, realizing condition (b).
#[derive(Debug, Clone)]
pub struct KeyBasedGen {
    /// RNG seed.
    pub seed: u64,
    /// Number of relations.
    pub num_relations: usize,
    /// Key width per relation (condition (b) caps IND width by this).
    pub key_width: usize,
    /// Number of non-key columns per relation.
    pub nonkey_width: usize,
    /// Number of INDs.
    pub num_inds: usize,
    /// Width of each IND (≤ `key_width` and ≤ `nonkey_width`).
    pub ind_width: usize,
    /// Restrict to acyclic INDs (relation indices strictly increase),
    /// guaranteeing finite chases — both query-level and data-level.
    pub acyclic: bool,
}

impl Default for KeyBasedGen {
    fn default() -> Self {
        KeyBasedGen {
            seed: 0,
            num_relations: 3,
            key_width: 1,
            nonkey_width: 2,
            num_inds: 3,
            ind_width: 1,
            acyclic: false,
        }
    }
}

impl KeyBasedGen {
    /// Generates `(catalog, Σ)`; the result always classifies as
    /// key-based (asserted in tests).
    pub fn generate(&self) -> (Catalog, DependencySet) {
        assert!(self.ind_width <= self.key_width && self.ind_width <= self.nonkey_width);
        assert!(self.ind_width >= 1 && self.num_relations >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut catalog = Catalog::new();
        for r in 0..self.num_relations {
            let attrs: Vec<String> = (0..self.key_width)
                .map(|k| format!("k{k}"))
                .chain((0..self.nonkey_width).map(|a| format!("a{a}")))
                .collect();
            catalog.declare(format!("R{r}"), attrs).unwrap();
        }
        let mut sigma = DependencySet::new();
        // Condition (a): shared-LHS FDs covering every non-key column.
        for rel in catalog.rel_ids() {
            let key: Vec<usize> = (0..self.key_width).collect();
            for a in 0..self.nonkey_width {
                sigma.push(Fd::new(rel, key.clone(), self.key_width + a));
            }
        }
        // Condition (b): INDs from non-key columns into key prefixes.
        let rels: Vec<RelId> = catalog.rel_ids().collect();
        let mut attempts = 0;
        while sigma.num_inds() < self.num_inds && attempts < self.num_inds * 50 {
            attempts += 1;
            let lhs = rels[rng.gen_range(0..rels.len())];
            let rhs = if self.acyclic {
                let larger: Vec<RelId> = rels.iter().copied().filter(|r| *r > lhs).collect();
                if larger.is_empty() {
                    continue;
                }
                larger[rng.gen_range(0..larger.len())]
            } else {
                rels[rng.gen_range(0..rels.len())]
            };
            // X ⊆ non-key columns of lhs, distinct.
            let mut nonkey: Vec<usize> =
                (self.key_width..self.key_width + self.nonkey_width).collect();
            nonkey.shuffle(&mut rng);
            let lhs_cols: Vec<usize> = nonkey[..self.ind_width].to_vec();
            // Y ⊆ key columns of rhs, distinct.
            let mut keycols: Vec<usize> = (0..self.key_width).collect();
            keycols.shuffle(&mut rng);
            let rhs_cols: Vec<usize> = keycols[..self.ind_width].to_vec();
            let ind = Ind::new(lhs, lhs_cols, rhs, rhs_cols);
            if !ind.is_trivial() {
                sigma.push(ind);
            }
        }
        (catalog, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_core::classify::{classify, SigmaClass};
    use cqchase_ir::validate::validate_deps;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("A", ["x", "y"]).unwrap();
        c.declare("B", ["u", "v", "w"]).unwrap();
        c.declare("C", ["p"]).unwrap();
        c
    }

    #[test]
    fn fd_sets_validate() {
        let c = cat();
        for seed in 0..10 {
            let s = FdSetGen {
                seed,
                num_fds: 3,
                max_lhs: 2,
            }
            .generate(&c);
            validate_deps(&s, &c).unwrap();
            assert_eq!(s.num_inds(), 0);
            assert!(s.fds().all(|fd| !fd.is_trivial()));
        }
    }

    #[test]
    fn fd_gen_skips_unary_relations() {
        let mut c = Catalog::new();
        c.declare("U", ["only"]).unwrap();
        let s = FdSetGen::default().generate(&c);
        assert!(s.is_empty());
    }

    #[test]
    fn ind_sets_validate() {
        let c = cat();
        for seed in 0..10 {
            let s = IndSetGen {
                seed,
                num_inds: 4,
                width: 2,
                acyclic: false,
            }
            .generate(&c);
            validate_deps(&s, &c).unwrap();
            assert!(s.num_inds() <= 4);
            assert!(matches!(
                classify(&s, &c),
                SigmaClass::IndsOnly { .. } | SigmaClass::Empty
            ));
        }
    }

    #[test]
    fn acyclic_sets_are_acyclic() {
        let c = cat();
        for seed in 0..10 {
            let s = IndSetGen {
                seed,
                num_inds: 3,
                width: 1,
                acyclic: true,
            }
            .generate(&c);
            for ind in s.inds() {
                assert!(ind.rhs_rel > ind.lhs_rel);
            }
        }
    }

    #[test]
    fn deterministic() {
        let c = cat();
        let g = IndSetGen::default();
        assert_eq!(g.generate(&c), g.generate(&c));
    }

    #[test]
    fn key_based_gen_is_key_based() {
        for seed in 0..10 {
            let (cat, sigma) = KeyBasedGen {
                seed,
                num_relations: 4,
                key_width: 2,
                nonkey_width: 2,
                num_inds: 5,
                ind_width: 2,
                acyclic: false,
            }
            .generate();
            validate_deps(&sigma, &cat).unwrap();
            assert!(
                matches!(classify(&sigma, &cat), SigmaClass::KeyBased { .. }),
                "seed {seed} must be key-based"
            );
        }
    }

    #[test]
    fn key_based_widths_respected() {
        let (cat, sigma) = KeyBasedGen::default().generate();
        assert_eq!(cat.len(), 3);
        assert_eq!(sigma.max_ind_width(), 1);
        // Each relation has nonkey_width FDs.
        assert_eq!(sigma.num_fds(), 3 * 2);
    }
}
