//! Conjunctive-query generators.

use cqchase_ir::{Catalog, ConjunctiveQuery, IrResult, QueryBuilder, RelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chain query over a binary relation:
/// `Q(x0) :- R(x0, x1), R(x1, x2), …, R(x_{n-1}, x_n)`.
pub fn chain_query(
    name: &str,
    catalog: &Catalog,
    rel: &str,
    length: usize,
) -> IrResult<ConjunctiveQuery> {
    assert!(length >= 1, "a chain needs at least one atom");
    let mut b = QueryBuilder::new(name, catalog).head_vars(["x0"]);
    for i in 0..length {
        b = b.atom(rel, [format!("x{i}"), format!("x{}", i + 1)])?;
    }
    b.build()
}

/// A cycle query over a binary relation:
/// `Q(x0) :- R(x0, x1), …, R(x_{n-1}, x0)`.
pub fn cycle_query(
    name: &str,
    catalog: &Catalog,
    rel: &str,
    length: usize,
) -> IrResult<ConjunctiveQuery> {
    assert!(length >= 1);
    let mut b = QueryBuilder::new(name, catalog).head_vars(["x0"]);
    for i in 0..length {
        let j = (i + 1) % length;
        b = b.atom(rel, [format!("x{i}"), format!("x{j}")])?;
    }
    b.build()
}

/// A star query: `Q(c) :- R(c, y1), R(c, y2), …, R(c, yn)`.
pub fn star_query(
    name: &str,
    catalog: &Catalog,
    rel: &str,
    rays: usize,
) -> IrResult<ConjunctiveQuery> {
    assert!(rays >= 1);
    let mut b = QueryBuilder::new(name, catalog).head_vars(["c"]);
    for i in 0..rays {
        b = b.atom(rel, ["c".to_string(), format!("y{i}")])?;
    }
    b.build()
}

/// A snowflake query: a star whose rays extend into chains.
/// `Q(c) :- R(c, y_i_0), R(y_i_0, y_i_1), …` for each of `rays` arms of
/// `depth` atoms — the canonical acyclic shape one step up from stars.
pub fn snowflake_query(
    name: &str,
    catalog: &Catalog,
    rel: &str,
    rays: usize,
    depth: usize,
) -> IrResult<ConjunctiveQuery> {
    assert!(rays >= 1 && depth >= 1);
    let mut b = QueryBuilder::new(name, catalog).head_vars(["c"]);
    for i in 0..rays {
        let mut prev = "c".to_string();
        for j in 0..depth {
            let next = format!("y{i}_{j}");
            b = b.atom(rel, [prev, next.clone()])?;
            prev = next;
        }
    }
    b.build()
}

/// Configuration for random query generation.
#[derive(Debug, Clone)]
pub struct QueryGen {
    /// RNG seed — fixed seeds give fixed queries.
    pub seed: u64,
    /// Number of conjuncts.
    pub num_atoms: usize,
    /// Size of the variable pool (smaller ⇒ more joins).
    pub num_vars: usize,
    /// Number of distinguished variables (head arity).
    pub num_dvs: usize,
    /// Probability that a position holds a constant instead of a
    /// variable.
    pub const_prob: f64,
    /// Constant pool size (constants are integers `0..const_pool`).
    pub const_pool: i64,
}

impl Default for QueryGen {
    fn default() -> Self {
        QueryGen {
            seed: 0,
            num_atoms: 4,
            num_vars: 6,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 3,
        }
    }
}

impl QueryGen {
    /// Generates a random query over the catalog's relations.
    ///
    /// Construction guarantees validity: the head variables are forced to
    /// occur in the body (atom positions are patched if sampling missed
    /// them).
    pub fn generate(&self, name: &str, catalog: &Catalog) -> ConjunctiveQuery {
        assert!(!catalog.is_empty(), "need at least one relation");
        assert!(self.num_vars >= self.num_dvs.max(1));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rels: Vec<RelId> = catalog.rel_ids().collect();
        // Raw plan: per atom, a relation and term picks.
        #[derive(Clone)]
        enum Pick {
            Var(usize),
            Const(i64),
        }
        let mut atoms: Vec<(RelId, Vec<Pick>)> = Vec::with_capacity(self.num_atoms);
        for _ in 0..self.num_atoms {
            let rel = rels[rng.gen_range(0..rels.len())];
            let arity = catalog.arity(rel);
            let terms = (0..arity)
                .map(|_| {
                    if rng.gen_bool(self.const_prob) {
                        Pick::Const(rng.gen_range(0..self.const_pool.max(1)))
                    } else {
                        Pick::Var(rng.gen_range(0..self.num_vars))
                    }
                })
                .collect();
            atoms.push((rel, terms));
        }
        // Ensure each DV occurs somewhere in the body.
        for dv in 0..self.num_dvs {
            let occurs = atoms
                .iter()
                .flat_map(|(_, ts)| ts.iter())
                .any(|p| matches!(p, Pick::Var(v) if *v == dv));
            if !occurs {
                // Patch a pseudo-random position.
                let ai = dv % atoms.len();
                if !atoms[ai].1.is_empty() {
                    let pi = dv % atoms[ai].1.len();
                    atoms[ai].1[pi] = Pick::Var(dv);
                }
            }
        }
        let mut b =
            QueryBuilder::new(name, catalog).head_vars((0..self.num_dvs).map(|i| format!("v{i}")));
        for (rel, picks) in &atoms {
            let rel_name = catalog.name(*rel).to_owned();
            let specs: Vec<cqchase_ir::builder::TermSpec> = picks
                .iter()
                .map(|p| match p {
                    Pick::Var(v) => cqchase_ir::builder::TermSpec::Var(format!("v{v}")),
                    Pick::Const(c) => cqchase_ir::builder::TermSpec::from(*c),
                })
                .collect();
            b = b.atom(&rel_name, specs).expect("relation exists");
        }
        b.build().expect("construction is safe by patching")
    }

    /// Generates `n` queries with seeds `seed, seed+1, …`.
    pub fn generate_many(
        &self,
        prefix: &str,
        catalog: &Catalog,
        n: usize,
    ) -> Vec<ConjunctiveQuery> {
        (0..n)
            .map(|i| {
                let mut cfg = self.clone();
                cfg.seed = self.seed.wrapping_add(i as u64);
                cfg.generate(&format!("{prefix}{i}"), catalog)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::validate::validate_query;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x", "y", "z"]).unwrap();
        c
    }

    #[test]
    fn chain_star_cycle_shapes() {
        let c = cat();
        let ch = chain_query("C", &c, "R", 3).unwrap();
        assert_eq!(ch.num_atoms(), 3);
        assert_eq!(ch.vars.len(), 4);
        let st = star_query("S", &c, "R", 4).unwrap();
        assert_eq!(st.num_atoms(), 4);
        assert_eq!(st.vars.len(), 5);
        let cy = cycle_query("Y", &c, "R", 3).unwrap();
        assert_eq!(cy.num_atoms(), 3);
        assert_eq!(cy.vars.len(), 3);
        for q in [&ch, &st, &cy] {
            validate_query(q, &c).unwrap();
        }
    }

    #[test]
    fn snowflake_shape() {
        let c = cat();
        let sf = snowflake_query("F", &c, "R", 3, 2).unwrap();
        assert_eq!(sf.num_atoms(), 6);
        assert_eq!(sf.vars.len(), 7); // c + 3 arms × 2 fresh vars
        validate_query(&sf, &c).unwrap();
        // depth 1 degenerates to a star
        let st = snowflake_query("F1", &c, "R", 4, 1).unwrap();
        assert_eq!(st.num_atoms(), 4);
        assert_eq!(st.vars.len(), 5);
    }

    #[test]
    fn random_queries_are_valid() {
        let c = cat();
        for seed in 0..20 {
            let q = QueryGen {
                seed,
                num_atoms: 5,
                num_vars: 4,
                num_dvs: 2,
                const_prob: 0.2,
                const_pool: 3,
            }
            .generate(&format!("Q{seed}"), &c);
            validate_query(&q, &c).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(q.num_atoms(), 5);
            assert_eq!(q.output_arity(), 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = cat();
        let cfg = QueryGen::default();
        let a = cfg.generate("Q", &c);
        let b = cfg.generate("Q", &c);
        assert_eq!(a, b);
    }

    #[test]
    fn generate_many_varies_seeds() {
        let c = cat();
        let qs = QueryGen::default().generate_many("Q", &c, 5);
        assert_eq!(qs.len(), 5);
        // At least two of them should differ structurally.
        assert!(qs.windows(2).any(|w| w[0].atoms != w[1].atoms));
    }
}
