//! Deterministic fact-delta script generation for the live-mutation
//! subsystem: benchmarks and differential tests replay the same seeded
//! sequence of inserts and deletes against an incrementally-maintained
//! session and a from-scratch rebuild, and require identical answers.

use cqchase_ir::{Catalog, RelId};
use cqchase_storage::{Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fact delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delta {
    /// Insert a tuple (a present tuple is a no-op).
    Insert(RelId, Tuple),
    /// Delete a tuple (an absent tuple is a no-op).
    Delete(RelId, Tuple),
}

impl Delta {
    /// The targeted relation.
    pub fn relation(&self) -> RelId {
        match self {
            Delta::Insert(rel, _) | Delta::Delete(rel, _) => *rel,
        }
    }

    /// The tuple moved in or out.
    pub fn tuple(&self) -> &Tuple {
        match self {
            Delta::Insert(_, t) | Delta::Delete(_, t) => t,
        }
    }
}

/// Configuration for seeded delta-script generation.
#[derive(Debug, Clone)]
pub struct DeltaScriptGen {
    /// RNG seed.
    pub seed: u64,
    /// Number of deltas to generate.
    pub ops: usize,
    /// Value domain `{0, …, domain-1}`.
    pub domain: i64,
    /// Probability a delta is a delete (the rest are inserts).
    pub delete_fraction: f64,
}

impl Default for DeltaScriptGen {
    fn default() -> Self {
        DeltaScriptGen {
            seed: 0,
            ops: 64,
            domain: 32,
            delete_fraction: 0.4,
        }
    }
}

impl DeltaScriptGen {
    /// Generates a delta script over every relation of `catalog`,
    /// starting from the given live tuples. Presence is tracked during
    /// generation so deletes mostly target tuples that are actually
    /// live (hitting the tombstone path) while still occasionally
    /// aiming at absent ones (the no-op path); inserts occasionally
    /// reinsert a just-deleted tuple (the dedup/tombstone interaction).
    pub fn generate(&self, catalog: &Catalog, initial: &[(RelId, Tuple)]) -> Vec<Delta> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rels: Vec<RelId> = catalog.rel_ids().collect();
        let mut live: Vec<(RelId, Tuple)> = initial.to_vec();
        let mut graveyard: Vec<(RelId, Tuple)> = Vec::new();
        let mut script = Vec::with_capacity(self.ops);
        for _ in 0..self.ops {
            let delete = !live.is_empty() && rng.gen_bool(self.delete_fraction);
            if delete {
                // Mostly delete live tuples; sometimes miss on purpose.
                if rng.gen_bool(0.85) {
                    let k = rng.gen_range(0..live.len());
                    let (rel, t) = live.swap_remove(k);
                    graveyard.push((rel, t.clone()));
                    script.push(Delta::Delete(rel, t));
                } else {
                    let rel = rels[rng.gen_range(0..rels.len())];
                    let t = self.random_tuple(&mut rng, catalog, rel);
                    script.push(Delta::Delete(rel, t));
                }
            } else if !graveyard.is_empty() && rng.gen_bool(0.25) {
                // Reinsert a previously deleted tuple verbatim.
                let k = rng.gen_range(0..graveyard.len());
                let (rel, t) = graveyard.swap_remove(k);
                live.push((rel, t.clone()));
                script.push(Delta::Insert(rel, t));
            } else {
                let rel = rels[rng.gen_range(0..rels.len())];
                let t = self.random_tuple(&mut rng, catalog, rel);
                if !live.iter().any(|(r, u)| *r == rel && u == &t) {
                    live.push((rel, t.clone()));
                }
                script.push(Delta::Insert(rel, t));
            }
        }
        script
    }

    fn random_tuple(&self, rng: &mut StdRng, catalog: &Catalog, rel: RelId) -> Tuple {
        (0..catalog.arity(rel))
            .map(|_| Value::int(rng.gen_range(0..self.domain.max(1))))
            .collect()
    }
}

/// A list of `(relation, tuple)` facts.
pub type FactList = Vec<(RelId, Tuple)>;

/// Deterministic **sliding-window** churn: a fixed-size window of
/// successor tuples `(k, k+1)` slides up the integer line, each step
/// inserting one chunk of fresh keys at the top and deleting the same
/// chunk of the oldest keys at the bottom. Every delete targets a live
/// tuple and every insert is new, so the script is pure effective
/// churn — the shape a long-running session's recent-facts window
/// produces, and the worst case for tombstone accumulation (the
/// relation's live size never grows, but slots die constantly).
#[derive(Debug, Clone, Copy)]
pub struct SlidingWindow {
    /// Live tuples at any moment.
    pub window: usize,
    /// Tuples inserted (and deleted) per step.
    pub chunk: usize,
}

impl SlidingWindow {
    fn tuple(k: usize) -> Tuple {
        vec![Value::int(k as i64), Value::int(k as i64 + 1)]
    }

    /// The initial window: tuples `(k, k+1)` for `k < window`.
    pub fn initial(&self, rel: RelId) -> FactList {
        (0..self.window).map(|k| (rel, Self::tuple(k))).collect()
    }

    /// Step `step`'s deltas as `(inserts, deletes)`: inserts the chunk
    /// starting at `window + step·chunk`, deletes the one starting at
    /// `step·chunk`.
    pub fn step(&self, rel: RelId, step: usize) -> (FactList, FactList) {
        let inserts = (0..self.chunk)
            .map(|i| (rel, Self::tuple(self.window + step * self.chunk + i)))
            .collect();
        let deletes = (0..self.chunk)
            .map(|i| (rel, Self::tuple(step * self.chunk + i)))
            .collect();
        (inserts, deletes)
    }
}

/// Splits a script into `(inserts, deletes)` fact lists in script
/// order — the shape one `update` protocol request carries. Callers
/// that need strict interleaving semantics apply deltas one by one;
/// this helper is for scripts known to touch each tuple at most once
/// per batch.
pub fn split_deltas(script: &[Delta]) -> (FactList, FactList) {
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for d in script {
        match d {
            Delta::Insert(rel, t) => inserts.push((*rel, t.clone())),
            Delta::Delete(rel, t) => deletes.push((*rel, t.clone())),
        }
    }
    (inserts, deletes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_storage::{Database, DbIndex};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        c
    }

    #[test]
    fn deterministic_and_sized() {
        let c = cat();
        let g = DeltaScriptGen {
            seed: 3,
            ops: 50,
            ..Default::default()
        };
        let s1 = g.generate(&c, &[]);
        let s2 = g.generate(&c, &[]);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 50);
        assert_ne!(
            s1,
            DeltaScriptGen {
                seed: 4,
                ops: 50,
                ..Default::default()
            }
            .generate(&c, &[])
        );
    }

    #[test]
    fn scripts_exercise_live_deletes_and_reinserts() {
        let c = cat();
        let script = DeltaScriptGen {
            seed: 7,
            ops: 200,
            domain: 8,
            delete_fraction: 0.45,
        }
        .generate(&c, &[]);
        // Replay against a database: a healthy script must hit both the
        // effective-delete path and the delete-then-reinsert path.
        let mut db = Database::new(&c);
        let mut idx = DbIndex::build(&db);
        let (mut effective_deletes, mut reinserts) = (0, 0);
        let mut ever_deleted: Vec<(RelId, Tuple)> = Vec::new();
        for d in &script {
            match d {
                Delta::Insert(rel, t) => {
                    if db.insert(*rel, t.clone()).unwrap() {
                        idx.note_insert(*rel, t);
                        if ever_deleted.iter().any(|(r, u)| r == rel && u == t) {
                            reinserts += 1;
                        }
                    }
                }
                Delta::Delete(rel, t) => {
                    if db.remove(*rel, t).unwrap() {
                        assert!(idx.note_remove(*rel, t));
                        effective_deletes += 1;
                        ever_deleted.push((*rel, t.clone()));
                    } else {
                        assert!(!idx.note_remove(*rel, t));
                    }
                }
            }
        }
        assert!(effective_deletes > 20, "got {effective_deletes}");
        assert!(reinserts > 0, "scripts must reinsert deleted tuples");
        // The incrementally maintained index agrees with a rebuild.
        let fresh = DbIndex::build(&db);
        for rel in c.rel_ids() {
            assert_eq!(idx.num_rows(rel), fresh.num_rows(rel));
        }
    }

    #[test]
    fn sliding_window_is_pure_effective_churn() {
        let c = cat();
        let r = c.resolve("R").unwrap();
        let w = SlidingWindow {
            window: 16,
            chunk: 4,
        };
        let mut db = Database::new(&c);
        for (rel, t) in w.initial(r) {
            assert!(db.insert(rel, t).unwrap());
        }
        assert_eq!(db.total_tuples(), 16);
        for step in 0..40 {
            let (ins, del) = w.step(r, step);
            for (rel, t) in &del {
                assert!(db.remove(*rel, t).unwrap(), "step {step}: stale delete");
            }
            for (rel, t) in ins {
                assert!(db.insert(rel, t).unwrap(), "step {step}: dup insert");
            }
            assert_eq!(db.total_tuples(), 16, "window size is invariant");
        }
    }

    #[test]
    fn split_separates_kinds_in_order() {
        let c = cat();
        let r = c.resolve("R").unwrap();
        let script = vec![
            Delta::Insert(r, vec![Value::int(1), Value::int(2)]),
            Delta::Delete(r, vec![Value::int(3), Value::int(4)]),
            Delta::Insert(r, vec![Value::int(5), Value::int(6)]),
        ];
        let (ins, del) = split_deltas(&script);
        assert_eq!(ins.len(), 2);
        assert_eq!(del.len(), 1);
        assert_eq!(ins[1].1[0], Value::int(5));
    }
}
