//! Random database-instance generation.

use cqchase_ir::{Catalog, DependencySet};
use cqchase_storage::{chase_instance, DataChaseBudget, DataChaseOutcome, Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random instance generation.
#[derive(Debug, Clone)]
pub struct DatabaseGen {
    /// RNG seed.
    pub seed: u64,
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Value domain `{0, …, domain-1}`.
    pub domain: i64,
}

impl Default for DatabaseGen {
    fn default() -> Self {
        DatabaseGen {
            seed: 0,
            tuples_per_relation: 8,
            domain: 10,
        }
    }
}

impl DatabaseGen {
    /// Generates a random instance (no dependency guarantees).
    pub fn generate(&self, catalog: &Catalog) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new(catalog);
        for (rel, schema) in catalog.iter() {
            for _ in 0..self.tuples_per_relation {
                let t: Vec<Value> = (0..schema.arity())
                    .map(|_| Value::int(rng.gen_range(0..self.domain.max(1))))
                    .collect();
                let _ = db.insert(rel, t);
            }
        }
        db
    }

    /// Generates a random instance and repairs it into a Σ-satisfying one
    /// via the data chase. Returns `None` when the instance is
    /// inconsistent with Σ or the chase does not terminate in budget
    /// (callers typically retry with the next seed).
    pub fn generate_satisfying(
        &self,
        catalog: &Catalog,
        sigma: &DependencySet,
        budget: DataChaseBudget,
    ) -> Option<Database> {
        let db = self.generate(catalog);
        match chase_instance(&db, sigma, budget) {
            DataChaseOutcome::Satisfied(out) => Some(out),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_ir::DependencySetBuilder;
    use cqchase_storage::satisfies;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        c
    }

    #[test]
    fn generates_requested_sizes() {
        let c = cat();
        let db = DatabaseGen {
            seed: 1,
            tuples_per_relation: 5,
            domain: 100,
        }
        .generate(&c);
        // Duplicates may collapse; with domain 100 that is unlikely but
        // allowed.
        assert!(db.total_tuples() <= 10);
        assert!(db.total_tuples() >= 6);
    }

    #[test]
    fn deterministic() {
        let c = cat();
        let g = DatabaseGen::default();
        assert_eq!(g.generate(&c), g.generate(&c));
    }

    #[test]
    fn satisfying_instances_satisfy() {
        let c = cat();
        let sigma = DependencySetBuilder::new(&c)
            .fd("R", ["a"], "b")
            .unwrap()
            .ind("R", ["b"], "S", ["x"])
            .unwrap()
            .build();
        let mut found = 0;
        for seed in 0..10 {
            let gen = DatabaseGen {
                seed,
                tuples_per_relation: 4,
                domain: 6,
            };
            if let Some(db) = gen.generate_satisfying(&c, &sigma, DataChaseBudget::default()) {
                assert!(satisfies(&db, &sigma));
                found += 1;
            }
        }
        assert!(found > 0, "some seeds must repair cleanly");
    }
}
