//! Named workloads referenced throughout the experiments: the paper's
//! own schemas and dependency sets.

use cqchase_ir::{parse_program, Program};

/// The introduction's EMP/DEP schema with the foreign-key IND and the two
/// queries `Q1`, `Q2` (equivalent under the IND, inequivalent without).
pub fn intro_emp_dep() -> Program {
    parse_program(
        "relation EMP(eno, sal, dept).
         relation DEP(dno, loc).
         ind EMP[dept] <= DEP[dno].
         Q1(e) :- EMP(e, s, d), DEP(d, l).
         Q2(e) :- EMP(e, s, d).",
    )
    .expect("the intro example is well-formed")
}

/// Figure 1's query and Σ: `Q(c) :- R(a, b, c)` with
/// `Σ = {R[1] ⊆ T[1], R[1,3] ⊆ S[1,2], S[1,3] ⊆ R[1,2]}` — both chases
/// are infinite.
pub fn figure1() -> Program {
    parse_program(
        "relation R(a, b, c).
         relation S(x, y, z).
         relation T(u, v).
         ind R[1] <= T[1].
         ind R[1, 3] <= S[1, 2].
         ind S[1, 3] <= R[1, 2].
         Q(c) :- R(a, b, c).",
    )
    .expect("the Figure 1 example is well-formed")
}

/// The key-based variant of the intro schema (adds the keys), used by
/// experiments that need a KeyBased classification.
pub fn intro_key_based() -> Program {
    parse_program(
        "relation EMP(eno, sal, dept).
         relation DEP(dno, loc).
         fd EMP: eno -> sal.
         fd EMP: eno -> dept.
         fd DEP: dno -> loc.
         ind EMP[dept] <= DEP[dno].
         Q1(e) :- EMP(e, s, d), DEP(d, l).
         Q2(e) :- EMP(e, s, d).",
    )
    .expect("the key-based intro example is well-formed")
}

/// A single binary relation with the cyclic width-1 IND `R[2] ⊆ R[1]` —
/// the simplest infinite chase (the paper's "(R\[2\] ⊆ R\[1\])" remark) plus
/// chain queries of several lengths.
pub fn successor_cycle() -> Program {
    parse_program(
        "relation R(a, b).
         ind R[2] <= R[1].
         Q(x) :- R(x, y).
         Chain2(x) :- R(x, y), R(y, z).
         Chain3(x) :- R(x, y), R(y, z), R(z, w).
         Back(x) :- R(y, x).",
    )
    .expect("the successor example is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqchase_core::classify::{classify, SigmaClass};

    #[test]
    fn families_parse_and_classify() {
        let intro = intro_emp_dep();
        assert!(matches!(
            classify(&intro.deps, &intro.catalog),
            SigmaClass::IndsOnly { width: 1 }
        ));
        let fig1 = figure1();
        assert!(matches!(
            classify(&fig1.deps, &fig1.catalog),
            SigmaClass::IndsOnly { width: 2 }
        ));
        let kb = intro_key_based();
        assert!(matches!(
            classify(&kb.deps, &kb.catalog),
            SigmaClass::KeyBased { .. }
        ));
        let succ = successor_cycle();
        assert_eq!(succ.queries.len(), 4);
    }
}
