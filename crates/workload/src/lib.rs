//! # cqchase-workload — deterministic workload generators
//!
//! Every experiment in the paper-reproduction harness sweeps over
//! families of queries, dependency sets and database instances. This
//! crate generates them *deterministically* (seeded `StdRng` everywhere)
//! so experiment tables are reproducible run to run:
//!
//! * [`queries`] — chain / star / cycle / random-shape conjunctive
//!   queries;
//! * [`dependencies`] — random IND sets (acyclic or cyclic, width-
//!   controlled), random FD sets, and random **key-based** schemas
//!   (FDs + INDs satisfying the paper's conditions (a) and (b));
//! * [`databases`] — random instances, optionally repaired into
//!   Σ-satisfying ones through the storage-layer data chase;
//! * [`families`] — the named workloads the experiments reference
//!   (the Figure 1 Σ, the Section 4 Σ, the intro's EMP/DEP schema);
//! * [`batches`] — batch workloads (query pools + containment pairs)
//!   for the batch/parallel engines and their benchmarks;
//! * [`deltas`] — seeded fact-delta scripts (insert/delete/reinsert
//!   interleavings) for the live-mutation subsystem's benchmarks and
//!   differential tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batches;
pub mod databases;
pub mod deltas;
pub mod dependencies;
pub mod families;
pub mod queries;

pub use batches::{chain_eval_batch, successor_containment_batch, ContainmentBatch};
pub use databases::DatabaseGen;
pub use deltas::{split_deltas, Delta, DeltaScriptGen, SlidingWindow};
pub use dependencies::{FdSetGen, IndSetGen, KeyBasedGen};
pub use queries::{chain_query, cycle_query, snowflake_query, star_query, QueryGen};
