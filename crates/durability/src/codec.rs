//! Primitive binary encoding for record payloads: little-endian
//! integers, length-prefixed UTF-8 strings, and tagged constants.
//!
//! Decoding is defensive — every read checks bounds and reports a
//! reason string rather than panicking, because decode runs over bytes
//! that CRC-passed but could still be a hostile or buggy file (the CRC
//! only proves the frame matches what was written, not that what was
//! written was well-formed).

use std::sync::Arc;

use cqchase_ir::Constant;

/// A decode failure: byte offset within the payload plus a reason.
pub type DecodeError = (usize, String);

/// Cursor over a payload being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors unless the payload was fully consumed — trailing garbage
    /// means the writer and reader disagree about the format.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.is_done() {
            Ok(())
        } else {
            Err((
                self.pos,
                format!("{} trailing bytes", self.buf.len() - self.pos),
            ))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err((
                self.pos,
                format!(
                    "{what}: need {n} bytes, {} remain",
                    self.buf.len() - self.pos
                ),
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a u32 LE.
    pub fn u32(&mut self, what: &str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a u64 LE.
    pub fn u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an i64 LE.
    pub fn i64(&mut self, what: &str) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &str) -> Result<String, DecodeError> {
        let len = self.u32(what)? as usize;
        let start = self.pos;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| (start, format!("{what}: invalid utf-8: {e}")))
    }

    /// Reads a tagged [`Constant`] (0 = Int i64 LE, 1 = Str).
    pub fn constant(&mut self) -> Result<Constant, DecodeError> {
        let at = self.pos;
        match self.u8("constant tag")? {
            0 => Ok(Constant::Int(self.i64("int constant")?)),
            1 => Ok(Constant::Str(Arc::from(self.string("str constant")?))),
            tag => Err((at, format!("unknown constant tag {tag}"))),
        }
    }

    /// Reads a length-prefixed vector via `item`.
    pub fn vec<T>(
        &mut self,
        what: &str,
        mut item: impl FnMut(&mut Reader<'a>) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let len = self.u32(what)? as usize;
        // A corrupted length must not drive a huge reservation: every
        // element needs at least one byte, so cap by remaining bytes.
        let mut out = Vec::with_capacity(len.min(self.buf.len() - self.pos));
        for _ in 0..len {
            out.push(item(self)?);
        }
        Ok(out)
    }
}

/// Appends a u32 LE.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a u64 LE.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a tagged [`Constant`].
pub fn put_constant(out: &mut Vec<u8>, c: &Constant) {
    match c {
        Constant::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Constant::Str(s) => {
            out.push(1);
            put_string(out, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_string(&mut buf, "héllo");
        put_constant(&mut buf, &Constant::int(-42));
        put_constant(&mut buf, &Constant::str("s"));

        let mut r = Reader::new(&buf);
        assert_eq!(r.u32("a").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("b").unwrap(), u64::MAX - 7);
        assert_eq!(r.string("c").unwrap(), "héllo");
        assert_eq!(r.constant().unwrap(), Constant::int(-42));
        assert_eq!(r.constant().unwrap(), Constant::str("s"));
        r.finish().unwrap();
    }

    #[test]
    fn decode_errors_carry_offset_and_reason() {
        // Truncated string.
        let mut buf = Vec::new();
        put_u32(&mut buf, 100);
        buf.extend_from_slice(b"short");
        let (off, reason) = Reader::new(&buf).string("name").unwrap_err();
        assert_eq!(off, 4);
        assert!(reason.contains("name"), "{reason}");

        // Unknown constant tag.
        let (off, reason) = Reader::new(&[7]).constant().unwrap_err();
        assert_eq!(off, 0);
        assert!(reason.contains("tag 7"), "{reason}");

        // Trailing bytes rejected.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        buf.push(0xFF);
        let mut r = Reader::new(&buf);
        r.u32("x").unwrap();
        assert!(r.finish().is_err());

        // Invalid utf-8.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let (_, reason) = Reader::new(&buf).string("s").unwrap_err();
        assert!(reason.contains("utf-8"), "{reason}");
    }

    #[test]
    fn huge_vec_length_does_not_overallocate() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let err = Reader::new(&buf)
            .vec("items", |r| r.u8("item"))
            .unwrap_err();
        assert!(err.1.contains("item"), "{err:?}");
    }
}
