//! The logical records stored in snapshots and the WAL.
//!
//! The service layer converts live sessions to and from these plain
//! data types; this crate never touches `Session` itself. Schema text
//! travels as the canonical rendering that round-trips through the
//! parser, while facts travel in the compact binary constant encoding —
//! restoring a snapshot therefore never re-parses fact lines, which is
//! what makes restore cheaper than re-registering.

use cqchase_ir::Constant;

use crate::codec::{put_constant, put_string, put_u32, put_u64, DecodeError, Reader};

/// A ground fact: relation name plus one constant per column.
pub type Fact = (String, Vec<Constant>);

/// One delta of an update batch: facts to insert, facts to delete.
pub type UpdateDelta = (Vec<Fact>, Vec<Fact>);

/// A session as frozen into a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// Registry name.
    pub name: String,
    /// Canonical schema text: catalog + Σ + queries, no fact lines.
    pub schema: String,
    /// Facts epoch at snapshot time (restore must reproduce it so
    /// cached eval results stay coherent).
    pub epoch: u64,
    /// Live facts grouped by relation name.
    pub relations: Vec<(String, Vec<Vec<Constant>>)>,
}

/// One WAL entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A session registration: the raw registration source, verbatim.
    Register {
        /// Registry name.
        name: String,
        /// The registration program text as submitted.
        program: String,
    },
    /// One acknowledged `apply_updates` batch.
    Update {
        /// Registry name of the session the batch applied to.
        session: String,
        /// The batch's deltas, valid subset only, in order.
        deltas: Vec<UpdateDelta>,
    },
}

const TAG_REGISTER: u8 = 1;
const TAG_UPDATE: u8 = 2;

fn put_fact(out: &mut Vec<u8>, (rel, row): &Fact) {
    put_string(out, rel);
    put_u32(out, row.len() as u32);
    for c in row {
        put_constant(out, c);
    }
}

fn read_fact(r: &mut Reader<'_>) -> Result<Fact, DecodeError> {
    let rel = r.string("fact relation")?;
    let row = r.vec("fact values", |r| r.constant())?;
    Ok((rel, row))
}

impl SessionRecord {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_string(&mut out, &self.name);
        put_string(&mut out, &self.schema);
        put_u64(&mut out, self.epoch);
        put_u32(&mut out, self.relations.len() as u32);
        for (rel, rows) in &self.relations {
            put_string(&mut out, rel);
            put_u32(&mut out, rows.len() as u32);
            for row in rows {
                put_u32(&mut out, row.len() as u32);
                for c in row {
                    put_constant(&mut out, c);
                }
            }
        }
        out
    }

    /// Deserializes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<SessionRecord, DecodeError> {
        let mut r = Reader::new(payload);
        let name = r.string("session name")?;
        let schema = r.string("session schema")?;
        let epoch = r.u64("facts epoch")?;
        let relations = r.vec("relations", |r| {
            let rel = r.string("relation name")?;
            let rows = r.vec("tuples", |r| r.vec("tuple values", |r| r.constant()))?;
            Ok((rel, rows))
        })?;
        r.finish()?;
        Ok(SessionRecord {
            name,
            schema,
            epoch,
            relations,
        })
    }
}

impl WalRecord {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Register { name, program } => {
                out.push(TAG_REGISTER);
                put_string(&mut out, name);
                put_string(&mut out, program);
            }
            WalRecord::Update { session, deltas } => {
                out.push(TAG_UPDATE);
                put_string(&mut out, session);
                put_u32(&mut out, deltas.len() as u32);
                for (insert, delete) in deltas {
                    put_u32(&mut out, insert.len() as u32);
                    for f in insert {
                        put_fact(&mut out, f);
                    }
                    put_u32(&mut out, delete.len() as u32);
                    for f in delete {
                        put_fact(&mut out, f);
                    }
                }
            }
        }
        out
    }

    /// Deserializes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8("wal record tag")? {
            TAG_REGISTER => WalRecord::Register {
                name: r.string("session name")?,
                program: r.string("program text")?,
            },
            TAG_UPDATE => {
                let session = r.string("session name")?;
                let deltas = r.vec("deltas", |r| {
                    let insert = r.vec("inserts", read_fact)?;
                    let delete = r.vec("deletes", read_fact)?;
                    Ok((insert, delete))
                })?;
                WalRecord::Update { session, deltas }
            }
            tag => return Err((0, format!("unknown wal record tag {tag}"))),
        };
        r.finish()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> SessionRecord {
        SessionRecord {
            name: "orders".into(),
            schema: "relation R(a, b).\nfd R: a -> b.\nQ(x) :- R(x, y).\n".into(),
            epoch: 42,
            relations: vec![
                (
                    "R".into(),
                    vec![
                        vec![Constant::int(1), Constant::str("x")],
                        vec![Constant::int(2), Constant::str("y\"quoted")],
                    ],
                ),
                ("S".into(), vec![]),
            ],
        }
    }

    #[test]
    fn session_record_roundtrip() {
        let rec = sample_session();
        let decoded = SessionRecord::decode(&rec.encode()).unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn wal_record_roundtrip() {
        let reg = WalRecord::Register {
            name: "s1".into(),
            program: "relation R(a).".into(),
        };
        assert_eq!(WalRecord::decode(&reg.encode()).unwrap(), reg);

        let upd = WalRecord::Update {
            session: "s1".into(),
            deltas: vec![
                (
                    vec![("R".into(), vec![Constant::int(7)])],
                    vec![("R".into(), vec![Constant::int(3)])],
                ),
                (vec![], vec![]),
            ],
        };
        assert_eq!(WalRecord::decode(&upd.encode()).unwrap(), upd);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        // Unknown tag.
        assert!(WalRecord::decode(&[9]).is_err());
        // Empty payload.
        assert!(WalRecord::decode(&[]).is_err());
        // Trailing garbage after a valid record.
        let mut bytes = WalRecord::Register {
            name: "a".into(),
            program: "p".into(),
        }
        .encode();
        bytes.push(0);
        assert!(WalRecord::decode(&bytes).is_err());
        // Truncated session record.
        let enc = sample_session().encode();
        assert!(SessionRecord::decode(&enc[..enc.len() - 1]).is_err());
    }
}
