//! CRC32 (IEEE 802.3 polynomial, the zlib/PNG variant), table-driven.
//!
//! Hand-rolled because the build container is offline: the checksum
//! guards every snapshot and WAL frame against torn writes and bit rot,
//! so it must be the *standard* CRC32 — any future tool reading these
//! files can verify frames with stock `crc32` implementations.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `data` (initial value all-ones, final complement — the
/// standard presentation whose check value for `"123456789"` is
/// `0xCBF4_3926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"the quick brown fox");
        let mut flipped = b"the quick brown fox".to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8u8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
