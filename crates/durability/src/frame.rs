//! File headers and CRC-framed records.
//!
//! Both file kinds start with a 12-byte header — an 8-byte magic plus a
//! u32 LE format version — followed by zero or more frames. A frame is
//! an 8-byte record header (u32 LE payload length, u32 LE CRC32 of the
//! payload) followed by the payload bytes. The CRC covers only the
//! payload.
//!
//! [`read_frame`] distinguishes two kinds of invalid frame. A crash
//! mid-append can only leave a *prefix* of one valid frame at the
//! physical end of the file, so damage consistent with that — a
//! truncated header, a truncated payload, or a bad-CRC frame that is
//! the file's last — is [`Frame::Torn`]. Any invalid frame *followed by
//! more bytes* (a complete frame whose CRC fails, or a length field no
//! writer produces) cannot be a torn append and is [`Frame::Corrupt`]:
//! bit rot, not a crash.

use crate::crc::crc32;

/// Magic prefix of snapshot files.
pub const SNAP_MAGIC: &[u8; 8] = b"CQSNAP01";
/// Magic prefix of WAL files.
pub const WAL_MAGIC: &[u8; 8] = b"CQWAL001";
/// Current format version, shared by both file kinds.
pub const FORMAT_VERSION: u32 = 1;
/// Bytes in a file header: magic + version.
pub const FILE_HEADER_LEN: usize = 12;
/// Bytes in a record header: payload length + payload CRC.
pub const RECORD_HEADER_LEN: usize = 8;

/// Cap on a single frame's payload (64 MiB), enforced on **both**
/// sides: writers refuse to frame a larger payload (see
/// [`Store::log`](crate::Store::log) /
/// [`Store::install_snapshot`](crate::Store::install_snapshot)), so a
/// stored length beyond it can only be corruption — the reader rejects
/// it rather than attempting a gigantic allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// The 12-byte header for a file of the given kind.
pub fn file_header(magic: &[u8; 8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FILE_HEADER_LEN);
    out.extend_from_slice(magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out
}

/// Validates a file's 12-byte header. Returns the offset where records
/// start, or a human-readable reason with the offending byte offset.
pub fn check_header(buf: &[u8], magic: &[u8; 8]) -> Result<usize, (u64, String)> {
    if buf.len() < FILE_HEADER_LEN {
        return Err((
            buf.len() as u64,
            format!(
                "file header truncated ({} of {FILE_HEADER_LEN} bytes)",
                buf.len()
            ),
        ));
    }
    if &buf[..8] != magic {
        return Err((
            0,
            format!(
                "bad magic {:?} (expected {:?})",
                String::from_utf8_lossy(&buf[..8]),
                String::from_utf8_lossy(magic)
            ),
        ));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err((
            8,
            format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    Ok(FILE_HEADER_LEN)
}

/// Wraps a payload in a frame: length + CRC header, then the payload.
///
/// Panics when the payload exceeds [`MAX_PAYLOAD`] — callers must
/// reject oversized payloads with a proper error *before* framing (the
/// store does), since a frame the reader refuses would make the file
/// permanently unbootable.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload of {} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD}); \
         callers must reject oversized payloads before framing",
        payload.len()
    );
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of reading one frame at an offset.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A valid record: its payload, and the offset of the next frame.
    Record {
        /// The verified payload bytes.
        payload: &'a [u8],
        /// Offset just past this frame.
        next: usize,
    },
    /// Clean end of file: `offset` was exactly the buffer length.
    End,
    /// An invalid frame consistent with a crash mid-append: a truncated
    /// header, a truncated payload, or a bad-CRC frame that reaches the
    /// physical end of the buffer. WAL recovery truncates it away;
    /// callers that require a complete file (snapshots) treat it as
    /// corruption.
    Torn {
        /// Byte offset of the bad frame (truncate the file here).
        offset: u64,
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// An invalid frame that *cannot* be a torn append — a complete
    /// frame whose CRC fails with more bytes after it, or a length no
    /// writer produces. Always hard corruption, even in a WAL: the
    /// records after it may be acknowledged, so truncating here would
    /// silently lose durable data.
    Corrupt {
        /// Byte offset of the bad frame.
        offset: u64,
        /// Human-readable description of what was wrong.
        reason: String,
    },
}

/// Reads the frame starting at `offset` in `buf`.
pub fn read_frame(buf: &[u8], offset: usize) -> Frame<'_> {
    if offset == buf.len() {
        return Frame::End;
    }
    if offset + RECORD_HEADER_LEN > buf.len() {
        return Frame::Torn {
            offset: offset as u64,
            reason: format!(
                "record header truncated ({} of {RECORD_HEADER_LEN} bytes)",
                buf.len() - offset
            ),
        };
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4 bytes"));
    let expect_crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        // The header's length bytes are fully present, and no writer
        // frames a payload past the cap — a torn append leaves a prefix
        // of a *valid* frame, so this length is corrupt, full stop.
        return Frame::Corrupt {
            offset: offset as u64,
            reason: format!("record length {len} exceeds cap {MAX_PAYLOAD}"),
        };
    }
    let start = offset + RECORD_HEADER_LEN;
    let end = start + len as usize;
    if end > buf.len() {
        return Frame::Torn {
            offset: offset as u64,
            reason: format!(
                "record payload truncated ({} of {len} bytes)",
                buf.len() - start
            ),
        };
    }
    let payload = &buf[start..end];
    let actual = crc32(payload);
    if actual != expect_crc {
        let reason =
            format!("record crc mismatch (stored {expect_crc:#010x}, computed {actual:#010x})");
        // A bad CRC on the file's last frame is the torn-append
        // signature (the payload bytes never all hit the disk); a bad
        // CRC with frames after it is mid-file bit rot.
        return if end == buf.len() {
            Frame::Torn {
                offset: offset as u64,
                reason,
            }
        } else {
            Frame::Corrupt {
                offset: offset as u64,
                reason,
            }
        };
    }
    Frame::Record { payload, next: end }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_rejections() {
        let h = file_header(WAL_MAGIC);
        assert_eq!(h.len(), FILE_HEADER_LEN);
        assert_eq!(check_header(&h, WAL_MAGIC), Ok(FILE_HEADER_LEN));

        // Wrong magic.
        let (off, reason) = check_header(&h, SNAP_MAGIC).unwrap_err();
        assert_eq!(off, 0);
        assert!(reason.contains("bad magic"), "{reason}");

        // Truncated header.
        let (off, reason) = check_header(&h[..5], WAL_MAGIC).unwrap_err();
        assert_eq!(off, 5);
        assert!(reason.contains("truncated"), "{reason}");

        // Future version.
        let mut future = h.clone();
        future[8] = 9;
        let (off, reason) = check_header(&future, WAL_MAGIC).unwrap_err();
        assert_eq!(off, 8);
        assert!(reason.contains("version 9"), "{reason}");
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = file_header(WAL_MAGIC);
        buf.extend_from_slice(&frame(b"first"));
        buf.extend_from_slice(&frame(b""));
        buf.extend_from_slice(&frame(b"third record"));

        let mut off = FILE_HEADER_LEN;
        let mut payloads = Vec::new();
        loop {
            match read_frame(&buf, off) {
                Frame::Record { payload, next } => {
                    payloads.push(payload.to_vec());
                    off = next;
                }
                Frame::End => break,
                Frame::Torn { offset, reason } | Frame::Corrupt { offset, reason } => {
                    panic!("bad frame at {offset}: {reason}")
                }
            }
        }
        assert_eq!(
            payloads,
            vec![b"first".to_vec(), b"".to_vec(), b"third record".to_vec()]
        );
    }

    #[test]
    fn every_truncation_is_clean_end_or_torn_at_frame_start() {
        let mut buf = file_header(WAL_MAGIC);
        buf.extend_from_slice(&frame(b"alpha"));
        let second_start = buf.len();
        buf.extend_from_slice(&frame(b"beta-record"));

        // Truncate at every byte inside the second frame: the first
        // frame must survive, and the tear must point at the second
        // frame's start so truncation lands on a frame boundary.
        for cut in second_start..buf.len() {
            let cut_buf = &buf[..cut];
            let first = read_frame(cut_buf, FILE_HEADER_LEN);
            let next = match first {
                Frame::Record { payload, next } => {
                    assert_eq!(payload, b"alpha");
                    next
                }
                other => panic!("first frame lost at cut {cut}: {other:?}"),
            };
            match read_frame(cut_buf, next) {
                Frame::End => assert_eq!(cut, second_start),
                Frame::Torn { offset, .. } => assert_eq!(offset, second_start as u64),
                Frame::Record { .. } => panic!("truncated frame read as record at cut {cut}"),
                Frame::Corrupt { reason, .. } => {
                    panic!("truncation misread as mid-file corruption at cut {cut}: {reason}")
                }
            }
        }
    }

    #[test]
    fn bitflips_in_last_frame_payload_are_torn() {
        let mut buf = file_header(WAL_MAGIC);
        buf.extend_from_slice(&frame(b"payload under test"));
        for byte in FILE_HEADER_LEN + RECORD_HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 0x10;
            match read_frame(&bad, FILE_HEADER_LEN) {
                Frame::Torn { offset, reason } => {
                    assert_eq!(offset, FILE_HEADER_LEN as u64);
                    assert!(reason.contains("crc mismatch"), "{reason}");
                }
                other => panic!("flip at {byte} undetected: {other:?}"),
            }
        }
    }

    #[test]
    fn bitflips_before_the_last_frame_are_corrupt_not_torn() {
        // A complete bad-CRC frame with bytes after it cannot be a torn
        // append: classifying it torn would truncate away the durable
        // record behind it.
        let mut buf = file_header(WAL_MAGIC);
        buf.extend_from_slice(&frame(b"first payload"));
        buf.extend_from_slice(&frame(b"second payload"));
        let second_start = buf.len() - (RECORD_HEADER_LEN + b"second payload".len());
        for byte in FILE_HEADER_LEN + RECORD_HEADER_LEN..second_start {
            let mut bad = buf.clone();
            bad[byte] ^= 0x10;
            match read_frame(&bad, FILE_HEADER_LEN) {
                Frame::Corrupt { offset, reason } => {
                    assert_eq!(offset, FILE_HEADER_LEN as u64);
                    assert!(reason.contains("crc mismatch"), "{reason}");
                }
                other => panic!("flip at {byte} misclassified: {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_alloc() {
        // No writer frames past MAX_PAYLOAD, so a stored length beyond
        // it is bit rot even at the tail — and never an allocation.
        let mut buf = file_header(WAL_MAGIC);
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        match read_frame(&buf, FILE_HEADER_LEN) {
            Frame::Corrupt { reason, .. } => assert!(reason.contains("exceeds cap"), "{reason}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PAYLOAD")]
    fn framing_an_oversized_payload_panics() {
        let _ = frame(&vec![0u8; MAX_PAYLOAD as usize + 1]);
    }
}
