//! # cqchase-durability — crash-safe session persistence
//!
//! Sessions registered and mutated at runtime must survive a process
//! restart: this crate owns the on-disk formats and the recovery
//! protocol, while staying independent of the service layer — it deals
//! in plain *records* ([`SessionRecord`], [`WalRecord`]) that the
//! service converts live sessions to and from.
//!
//! Two file kinds live in a data directory, as a `snap-N` / `wal-N`
//! pair sharing a sequence number:
//!
//! * **snapshot** (`snap-N`) — the full registry at one moment: per
//!   session the canonical schema text (catalog + Σ + queries, which
//!   round-trips through the parser), the live facts in a compact
//!   binary encoding, and the facts epoch. Written atomically
//!   (temp + rename), versioned, each session record CRC32-framed.
//! * **WAL** (`wal-N`) — an append-only log of everything since that
//!   snapshot: one CRC-framed record per registration or per
//!   `apply_updates` batch, fsync'd before the operation is
//!   acknowledged. When the WAL outgrows a threshold it is *rotated*:
//!   a fresh `snap-(N+1)` absorbs it and a fresh empty `wal-(N+1)`
//!   starts.
//!
//! **Recovery** ([`Store::open`]) loads the highest-sequence snapshot,
//! then replays its WAL record by record. A *torn tail* — a record with
//! a bad CRC or a truncated frame, the signature of a crash mid-append
//! — ends replay cleanly at the last durable record and is truncated
//! away, so the next append lands on a valid frame boundary. Anything
//! wrong *before* the tail (bad magic, bad version, a corrupt snapshot)
//! is a hard [`StoreError::Corrupt`] naming the file and byte offset:
//! boot must fail loudly rather than serve a silently emptier registry.
//!
//! All file I/O goes through the injectable [`StorageIo`] trait;
//! [`MemIo`] lets tests inject short writes, fsync failures, and
//! kill-at-every-byte-offset truncations without touching a disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod frame;
pub mod io;
pub mod record;
pub mod store;

pub use io::{MemIo, StdIo, StorageIo};
pub use record::{Fact, SessionRecord, UpdateDelta, WalRecord};
pub use store::{Recovered, Store, StoreError, StoreStats, DEFAULT_ROTATE_BYTES};
