//! The durability store: owns a data directory holding a `snap-N` /
//! `wal-N` pair and drives the snapshot → append → rotate lifecycle.
//!
//! Invariants the store maintains:
//!
//! * A WAL record is reported durable only after its bytes are appended
//!   **and** fsync'd. On any append/fsync failure the WAL is rolled
//!   back to its last durable length so the next append lands on a
//!   frame boundary; if even the rollback fails the WAL is *poisoned*
//!   (every further `log` errors) until a snapshot rotation replaces it
//!   with a fresh file.
//! * Rotation commits on the snapshot rename. The fresh `wal-(N+1)` is
//!   created *first*; only then is `snap-(N+1)` renamed into place
//!   (atomically, temp + rename via [`StorageIo::write_atomic`]). A
//!   crash or error between the two leaves a stray `wal-(N+1)` that
//!   recovery never looks at — the old pair stays authoritative and
//!   keeps accepting appends, so no acknowledged record is ever
//!   stranded in a WAL the next boot ignores. Conversely, once
//!   `snap-N` exists its `wal-N` must too: a missing WAL for the
//!   highest snapshot is hard corruption, not a fresh start.
//! * No write ever produces a file recovery refuses: a record or
//!   snapshot session whose payload exceeds the frame cap is rejected
//!   up front with [`StoreError::TooLarge`] instead of being framed.
//! * Recovery tolerates exactly one kind of damage — a torn tail at the
//!   physical end of the WAL, the signature of a crash mid-append. It
//!   is truncated away and counted. Everything else (bad magic, bad
//!   version, a CRC-valid record that fails to decode, a bad frame
//!   *before* the physical tail, any damage to the snapshot) is a hard
//!   [`StoreError::Corrupt`] naming the file and byte offset: boot
//!   fails loudly instead of serving a silently emptier registry.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::frame::{
    check_header, file_header, frame, read_frame, Frame, FILE_HEADER_LEN, MAX_PAYLOAD, SNAP_MAGIC,
    WAL_MAGIC,
};
use crate::io::StorageIo;
use crate::record::{SessionRecord, WalRecord};

/// Default WAL size past which [`Store::should_rotate`] asks for a
/// fresh snapshot (16 MiB).
pub const DEFAULT_ROTATE_BYTES: u64 = 16 << 20;

/// Why the store could not proceed.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed.
    Io(io::Error),
    /// A file's content is invalid — boot must not proceed.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Byte offset of the first invalid content.
        offset: u64,
        /// Human-readable description.
        reason: String,
    },
    /// The WAL is poisoned: a previous append failed *and* the rollback
    /// truncate failed, so the tail is unknown. Cleared by rotation.
    Poisoned(String),
    /// A record (or snapshot session) payload exceeds the frame size
    /// cap. Refused at write time: framing it would produce a file
    /// recovery permanently refuses to read.
    TooLarge {
        /// The payload's encoded size in bytes.
        len: usize,
        /// The cap ([`crate::frame::MAX_PAYLOAD`]).
        cap: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "durability i/o error: {e}"),
            StoreError::Corrupt {
                file,
                offset,
                reason,
            } => {
                write!(f, "{}: corrupt at byte {offset}: {reason}", file.display())
            }
            StoreError::Poisoned(reason) => {
                write!(
                    f,
                    "wal poisoned (rollback failed: {reason}); snapshot rotation required"
                )
            }
            StoreError::TooLarge { len, cap } => {
                write!(
                    f,
                    "record payload of {len} bytes exceeds the {cap}-byte frame cap"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Buckets in the fsync latency histogram: power-of-two microseconds,
/// same convention as the service latency histograms (bucket 0 holds
/// only 0 µs, bucket *i* ≥ 1 covers `[2^(i-1), 2^i)` µs, the last
/// bucket absorbs everything slower).
pub const FSYNC_HIST_BUCKETS: usize = 20;

/// The histogram bucket holding a `us` fsync sample.
fn fsync_bucket(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(FSYNC_HIST_BUCKETS - 1)
}

/// Monotonic counters exposed through the service `stats` op.
#[derive(Debug, Default)]
pub struct StoreStats {
    snapshots_written: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    fsyncs: AtomicU64,
    fsync_total_us: AtomicU64,
    fsync_hist: [AtomicU64; FSYNC_HIST_BUCKETS],
    recoveries: AtomicU64,
    torn_tails_discarded: AtomicU64,
}

impl StoreStats {
    /// Snapshots written (including rotations).
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written.load(Ordering::Relaxed)
    }
    /// WAL records durably appended.
    pub fn wal_records(&self) -> u64 {
        self.wal_records.load(Ordering::Relaxed)
    }
    /// WAL bytes durably appended (cumulative, across rotations).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }
    /// Successful fsync calls issued by the store.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }
    /// Cumulative wall time spent in successful fsync calls, µs.
    pub fn fsync_total_us(&self) -> u64 {
        self.fsync_total_us.load(Ordering::Relaxed)
    }
    /// Power-of-two fsync latency histogram (see [`FSYNC_HIST_BUCKETS`]).
    pub fn fsync_histogram(&self) -> [u64; FSYNC_HIST_BUCKETS] {
        let mut out = [0u64; FSYNC_HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.fsync_hist.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
    /// Records one successful fsync: bumps the call counter and lands
    /// the latency in the histogram.
    fn record_fsync(&self, elapsed: std::time::Duration) {
        let us = elapsed.as_micros() as u64;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.fsync_total_us.fetch_add(us, Ordering::Relaxed);
        self.fsync_hist[fsync_bucket(us)].fetch_add(1, Ordering::Relaxed);
    }
    /// Boots that restored existing on-disk state.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }
    /// Torn WAL tails truncated away during recovery.
    pub fn torn_tails_discarded(&self) -> u64 {
        self.torn_tails_discarded.load(Ordering::Relaxed)
    }
}

/// What [`Store::open`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// Sessions from the loaded snapshot (empty on a fresh directory).
    pub sessions: Vec<SessionRecord>,
    /// WAL records to replay, oldest first.
    pub wal: Vec<WalRecord>,
    /// Sequence number of the loaded `snap-N`/`wal-N` pair.
    pub seq: u64,
    /// Description of a torn WAL tail that was truncated away, if any.
    pub torn_tail: Option<String>,
}

impl Recovered {
    /// True when the directory held no prior state.
    pub fn is_fresh(&self) -> bool {
        self.sessions.is_empty() && self.wal.is_empty() && self.seq == 0
    }
}

#[derive(Debug)]
struct WalState {
    /// Sequence number of the active `snap-N`/`wal-N` pair.
    seq: u64,
    /// Durable length of the active WAL file: every byte below this is
    /// fsync'd and frame-aligned.
    durable_len: u64,
    /// Set when rollback after a failed append also failed.
    poisoned: Option<String>,
}

/// Handle on a data directory. Shareable across threads; `log`,
/// `install_snapshot`, and `should_rotate` serialize on an internal
/// lock (callers coordinate snapshot *content* themselves).
#[derive(Debug)]
pub struct Store {
    io: Arc<dyn StorageIo>,
    dir: PathBuf,
    rotate_bytes: u64,
    state: Mutex<WalState>,
    stats: StoreStats,
}

fn seq_of(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.parse().ok()
}

impl Store {
    /// Opens (or initializes) a data directory and recovers its state.
    ///
    /// A fresh directory gets an empty `snap-0` and `wal-0`. Otherwise
    /// the highest-sequence snapshot is loaded and its WAL scanned; a
    /// torn tail is truncated away, any other damage is a hard error.
    pub fn open(
        io: Arc<dyn StorageIo>,
        dir: &Path,
        rotate_bytes: u64,
    ) -> Result<(Store, Recovered), StoreError> {
        io.create_dir_all(dir)?;
        let latest = io
            .list(dir)?
            .iter()
            .filter_map(|n| seq_of(n, "snap-"))
            .max();
        let store = Store {
            io,
            dir: dir.to_path_buf(),
            rotate_bytes,
            state: Mutex::new(WalState {
                seq: 0,
                durable_len: 0,
                poisoned: None,
            }),
            stats: StoreStats::default(),
        };

        let recovered = match latest {
            None => {
                store.write_empty_pair(0)?;
                store.state.lock().expect("store lock").durable_len = FILE_HEADER_LEN as u64;
                Recovered {
                    sessions: Vec::new(),
                    wal: Vec::new(),
                    seq: 0,
                    torn_tail: None,
                }
            }
            Some(seq) => {
                let sessions = store.read_snapshot(seq)?;
                let (wal, torn_tail) = store.recover_wal(seq)?;
                store.stats.recoveries.fetch_add(1, Ordering::Relaxed);
                if torn_tail.is_some() {
                    store
                        .stats
                        .torn_tails_discarded
                        .fetch_add(1, Ordering::Relaxed);
                }
                let mut state = store.state.lock().expect("store lock");
                state.seq = seq;
                state.durable_len = store.io.len(&store.wal_path(seq))?;
                drop(state);
                Recovered {
                    sessions,
                    wal,
                    seq,
                    torn_tail,
                }
            }
        };
        Ok((store, recovered))
    }

    /// The store's monotonic counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Current durable length of the active WAL file in bytes.
    pub fn wal_len(&self) -> u64 {
        self.state.lock().expect("store lock").durable_len
    }

    /// Sequence number of the active `snap-N`/`wal-N` pair.
    pub fn seq(&self) -> u64 {
        self.state.lock().expect("store lock").seq
    }

    fn snap_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq}"))
    }

    fn wal_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("wal-{seq}"))
    }

    fn write_empty_pair(&self, seq: u64) -> Result<(), StoreError> {
        // WAL before snapshot, same as rotation: a snapshot must never
        // exist without its WAL (recovery treats that as corruption).
        self.io
            .write_atomic(&self.wal_path(seq), &file_header(WAL_MAGIC))?;
        self.io.write_atomic(
            &self.snap_path(seq),
            &Store::encode_snapshot(&[]).expect("empty snapshot is under the cap"),
        )?;
        Ok(())
    }

    fn encode_snapshot(sessions: &[SessionRecord]) -> Result<Vec<u8>, StoreError> {
        let mut out = file_header(SNAP_MAGIC);
        out.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
        for s in sessions {
            let payload = s.encode();
            if payload.len() > MAX_PAYLOAD as usize {
                return Err(StoreError::TooLarge {
                    len: payload.len(),
                    cap: MAX_PAYLOAD,
                });
            }
            out.extend_from_slice(&frame(&payload));
        }
        Ok(out)
    }

    fn corrupt(&self, path: &Path, offset: u64, reason: String) -> StoreError {
        StoreError::Corrupt {
            file: path.to_path_buf(),
            offset,
            reason,
        }
    }

    fn read_snapshot(&self, seq: u64) -> Result<Vec<SessionRecord>, StoreError> {
        let path = self.snap_path(seq);
        let buf = self.io.read(&path)?;
        let mut off = check_header(&buf, SNAP_MAGIC).map_err(|(o, r)| self.corrupt(&path, o, r))?;
        if off + 4 > buf.len() {
            return Err(self.corrupt(&path, off as u64, "session count truncated".into()));
        }
        let count = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
        off += 4;
        let mut sessions = Vec::with_capacity(count.min(1024) as usize);
        for i in 0..count {
            match read_frame(&buf, off) {
                Frame::Record { payload, next } => {
                    let payload_start = off + crate::frame::RECORD_HEADER_LEN;
                    let rec = SessionRecord::decode(payload)
                        .map_err(|(o, r)| self.corrupt(&path, (payload_start + o) as u64, r))?;
                    sessions.push(rec);
                    off = next;
                }
                Frame::End => {
                    return Err(self.corrupt(
                        &path,
                        off as u64,
                        format!("snapshot ends after {i} of {count} session records"),
                    ));
                }
                Frame::Torn { offset, reason } | Frame::Corrupt { offset, reason } => {
                    return Err(self.corrupt(&path, offset, reason));
                }
            }
        }
        if off != buf.len() {
            return Err(self.corrupt(
                &path,
                off as u64,
                format!(
                    "{} trailing bytes after {count} session records",
                    buf.len() - off
                ),
            ));
        }
        Ok(sessions)
    }

    /// Scans `wal-seq`, truncating a torn tail away. Returns the valid
    /// records and the tail description if one was discarded.
    fn recover_wal(&self, seq: u64) -> Result<(Vec<WalRecord>, Option<String>), StoreError> {
        let path = self.wal_path(seq);
        let buf = match self.io.read(&path) {
            Ok(buf) => buf,
            // The writer creates `wal-N` strictly before the `snap-N`
            // rename that commits the pair, so a snapshot without its
            // WAL can only mean external damage — and the missing WAL
            // may have held acknowledged records. Fail loudly.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(self.corrupt(
                    &path,
                    0,
                    format!(
                        "wal missing for snapshot {} (acknowledged records may be lost)",
                        self.snap_path(seq).display()
                    ),
                ));
            }
            Err(e) => return Err(e.into()),
        };
        // The header is written atomically with the file, so a bad or
        // short header is real corruption, not a torn append.
        let mut off = check_header(&buf, WAL_MAGIC).map_err(|(o, r)| self.corrupt(&path, o, r))?;
        let mut records = Vec::new();
        loop {
            match read_frame(&buf, off) {
                Frame::Record { payload, next } => {
                    let payload_start = off + crate::frame::RECORD_HEADER_LEN;
                    // CRC passed: a decode failure here is not a torn
                    // write but a writer/reader disagreement — hard stop.
                    let rec = WalRecord::decode(payload)
                        .map_err(|(o, r)| self.corrupt(&path, (payload_start + o) as u64, r))?;
                    records.push(rec);
                    off = next;
                }
                Frame::End => return Ok((records, None)),
                // A bad frame *before* the physical tail (mid-file bit
                // rot) may shadow acknowledged records behind it —
                // truncating would silently lose them, so boot fails.
                Frame::Corrupt { offset, reason } => {
                    return Err(self.corrupt(&path, offset, reason));
                }
                Frame::Torn { offset, reason } => {
                    self.io.truncate(&path, offset)?;
                    let t0 = std::time::Instant::now();
                    self.io.fsync(&path)?;
                    self.stats.record_fsync(t0.elapsed());
                    let tail = format!(
                        "torn wal tail at byte {offset} of {}: {reason} ({} bytes discarded)",
                        path.display(),
                        buf.len() as u64 - offset
                    );
                    return Ok((records, Some(tail)));
                }
            }
        }
    }

    /// Durably appends one record: the record is on stable storage when
    /// this returns `Ok`. On failure the WAL is rolled back to its last
    /// durable length (or poisoned if rollback fails) and the record is
    /// NOT durable — the caller must not acknowledge the operation.
    pub fn log(&self, rec: &WalRecord) -> Result<(), StoreError> {
        let payload = rec.encode();
        if payload.len() > MAX_PAYLOAD as usize {
            // Refused up front: an oversized frame on disk would be
            // unreadable (and `len as u32` would wrap past 4 GiB).
            return Err(StoreError::TooLarge {
                len: payload.len(),
                cap: MAX_PAYLOAD,
            });
        }
        let framed = frame(&payload);
        let mut state = self.state.lock().expect("store lock");
        if let Some(reason) = &state.poisoned {
            return Err(StoreError::Poisoned(reason.clone()));
        }
        let path = self.wal_path(state.seq);
        let mut fsync_elapsed = std::time::Duration::ZERO;
        let result = self.io.append(&path, &framed).and_then(|()| {
            let t0 = std::time::Instant::now();
            let r = self.io.fsync(&path);
            fsync_elapsed = t0.elapsed();
            r
        });
        match result {
            Ok(()) => {
                state.durable_len += framed.len() as u64;
                self.stats.wal_records.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .wal_bytes
                    .fetch_add(framed.len() as u64, Ordering::Relaxed);
                self.stats.record_fsync(fsync_elapsed);
                Ok(())
            }
            Err(e) => {
                // Undo whatever prefix landed so the next append starts
                // on a frame boundary.
                if let Err(tr) = self.io.truncate(&path, state.durable_len) {
                    state.poisoned = Some(format!("{tr} (after append failure: {e})"));
                }
                Err(e.into())
            }
        }
    }

    /// True when the active WAL has outgrown the rotation threshold, or
    /// is poisoned and needs a rotation to recover.
    pub fn should_rotate(&self) -> bool {
        let state = self.state.lock().expect("store lock");
        state.poisoned.is_some() || state.durable_len >= self.rotate_bytes
    }

    /// Writes a fresh snapshot holding `sessions` and starts an empty
    /// WAL under the next sequence number. On success the previous pair
    /// is removed (best-effort) and a previously poisoned WAL is healed.
    /// On failure nothing changed: the old pair stays authoritative and
    /// keeps accepting appends, so no acknowledged record is at risk.
    ///
    /// The caller must guarantee `sessions` reflects every record it
    /// has logged (no update may be durable in the old WAL yet missing
    /// from `sessions`, or it would be lost with the old pair).
    pub fn install_snapshot(&self, sessions: &[SessionRecord]) -> Result<(), StoreError> {
        let bytes = Store::encode_snapshot(sessions)?;
        let mut state = self.state.lock().expect("store lock");
        let next = state.seq + 1;
        // Write order is the crash-safety story: the fresh WAL is
        // created FIRST and the snapshot rename is the commit point.
        // Recovery only ever looks at the WAL matching the highest
        // snapshot, so a crash (or error) between the two writes leaves
        // a stray `wal-(next)` it ignores — while `snap-(next)` first
        // would make a boot adopt the new snapshot with an empty WAL
        // and silently drop everything acknowledged into `wal-(old)`
        // after the failed rotation.
        self.io
            .write_atomic(&self.wal_path(next), &file_header(WAL_MAGIC))?;
        if let Err(e) = self.io.write_atomic(&self.snap_path(next), &bytes) {
            // Best-effort: a stray WAL is harmless but untidy.
            let _ = self.io.remove(&self.wal_path(next));
            return Err(e.into());
        }
        let old = state.seq;
        state.seq = next;
        state.durable_len = FILE_HEADER_LEN as u64;
        state.poisoned = None;
        self.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
        // The new pair is authoritative; losing the old one is harmless.
        let _ = self.io.remove(&self.wal_path(old));
        let _ = self.io.remove(&self.snap_path(old));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;
    use cqchase_ir::Constant;

    fn dir() -> PathBuf {
        PathBuf::from("/data")
    }

    fn reg(name: &str) -> WalRecord {
        WalRecord::Register {
            name: name.into(),
            program: format!("relation {name}(a)."),
        }
    }

    fn upd(session: &str, v: i64) -> WalRecord {
        WalRecord::Update {
            session: session.into(),
            deltas: vec![(vec![("R".into(), vec![Constant::int(v)])], vec![])],
        }
    }

    fn sess(name: &str, epoch: u64) -> SessionRecord {
        SessionRecord {
            name: name.into(),
            schema: format!("relation {name}(a).\n"),
            epoch,
            relations: vec![(name.into(), vec![vec![Constant::int(1)]])],
        }
    }

    #[test]
    fn fresh_open_then_reopen_replays_log() {
        let io = Arc::new(MemIo::new());
        let (store, rec) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert!(rec.is_fresh());
        store.log(&reg("s1")).unwrap();
        store.log(&upd("s1", 7)).unwrap();
        store.log(&upd("s1", 8)).unwrap();
        assert_eq!(store.stats().wal_records(), 3);
        assert_eq!(store.stats().fsyncs(), 3);

        let (store2, rec2) = Store::open(io, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert_eq!(rec2.seq, 0);
        assert_eq!(rec2.wal, vec![reg("s1"), upd("s1", 7), upd("s1", 8)]);
        assert!(rec2.torn_tail.is_none());
        assert_eq!(store2.stats().recoveries(), 1);
    }

    #[test]
    fn kill_at_every_byte_offset_recovers_a_record_prefix() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        let records = [reg("s1"), upd("s1", 1), upd("s1", 2)];
        let mut boundaries = vec![store.wal_len()];
        for r in &records {
            store.log(r).unwrap();
            boundaries.push(store.wal_len());
        }
        let wal = io.dump(&dir().join("wal-0")).unwrap();
        assert_eq!(wal.len() as u64, *boundaries.last().unwrap());

        for cut in FILE_HEADER_LEN..=wal.len() {
            let io2 = Arc::new(MemIo::new());
            io2.set_file(
                &dir().join("snap-0"),
                io.dump(&dir().join("snap-0")).unwrap(),
            );
            io2.set_file(&dir().join("wal-0"), wal[..cut].to_vec());
            let (store2, rec) = Store::open(io2.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
            // Exactly the records whose frames fit below the cut survive.
            let survivors = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(rec.wal.len(), survivors, "cut at {cut}");
            assert_eq!(rec.wal, records[..survivors], "cut at {cut}");
            let on_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(rec.torn_tail.is_some(), !on_boundary, "cut at {cut}");
            // The torn tail is physically gone: the file now ends on the
            // last good frame boundary and appends resume cleanly.
            assert_eq!(
                io2.dump(&dir().join("wal-0")).unwrap().len() as u64,
                boundaries[survivors],
                "cut at {cut}"
            );
            store2.log(&upd("s1", 99)).unwrap();
            let (_, rec3) = Store::open(io2, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
            assert_eq!(rec3.wal.last(), Some(&upd("s1", 99)), "cut at {cut}");
        }
    }

    #[test]
    fn fsync_histogram_counts_every_successful_fsync() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        store.log(&reg("s1")).unwrap();
        store.log(&upd("s1", 1)).unwrap();
        io.set_fail_fsync(true);
        assert!(store.log(&upd("s1", 2)).is_err());
        io.set_fail_fsync(false);
        store.log(&upd("s1", 3)).unwrap();

        let hist = store.stats().fsync_histogram();
        let total: u64 = hist.iter().sum();
        // Only the three successful appends land in the histogram.
        assert_eq!(total, 3);
        assert_eq!(total, store.stats().fsyncs());
        // Bucket arithmetic matches the shared pow-2 convention.
        assert_eq!(fsync_bucket(0), 0);
        assert_eq!(fsync_bucket(1), 1);
        assert_eq!(fsync_bucket(1024), 11);
        assert_eq!(fsync_bucket(u64::MAX), FSYNC_HIST_BUCKETS - 1);
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error_naming_file_and_offset() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        store.install_snapshot(&[sess("s1", 3)]).unwrap();
        let path = dir().join("snap-1");
        let good = io.dump(&path).unwrap();

        let open = |bytes: Vec<u8>| {
            let io2 = Arc::new(MemIo::new());
            io2.set_file(&path, bytes);
            io2.set_file(&dir().join("wal-1"), file_header(WAL_MAGIC));
            Store::open(io2, &dir(), DEFAULT_ROTATE_BYTES)
        };

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        match open(bad) {
            Err(StoreError::Corrupt {
                file,
                offset,
                reason,
            }) => {
                assert_eq!(file, path);
                assert_eq!(offset, 0);
                assert!(reason.contains("bad magic"), "{reason}");
            }
            other => panic!("{other:?}"),
        }

        // Bad version.
        let mut bad = good.clone();
        bad[8] = 2;
        match open(bad) {
            Err(StoreError::Corrupt { offset, reason, .. }) => {
                assert_eq!(offset, 8);
                assert!(reason.contains("version"), "{reason}");
            }
            other => panic!("{other:?}"),
        }

        // Flipped payload byte (CRC mismatch).
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        match open(bad) {
            Err(StoreError::Corrupt { reason, .. }) => {
                assert!(reason.contains("crc mismatch"), "{reason}");
            }
            other => panic!("{other:?}"),
        }

        // Truncated mid-record: snapshots do NOT get torn-tail leniency.
        match open(good[..good.len() - 3].to_vec()) {
            Err(StoreError::Corrupt { reason, .. }) => {
                assert!(reason.contains("truncated"), "{reason}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_fsync_rolls_back_and_is_not_durable() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        store.log(&reg("s1")).unwrap();
        let durable = store.wal_len();

        io.set_fail_fsync(true);
        assert!(store.log(&upd("s1", 1)).is_err());
        io.set_fail_fsync(false);
        // Rolled back: the unacknowledged record left no trace.
        assert_eq!(store.wal_len(), durable);
        assert_eq!(io.dump(&dir().join("wal-0")).unwrap().len() as u64, durable);

        // Torn short append likewise.
        io.arm_short_append(3);
        assert!(store.log(&upd("s1", 2)).is_err());
        assert_eq!(io.dump(&dir().join("wal-0")).unwrap().len() as u64, durable);

        // The log keeps working afterwards.
        store.log(&upd("s1", 3)).unwrap();
        let (_, rec) = Store::open(io, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert_eq!(rec.wal, vec![reg("s1"), upd("s1", 3)]);
    }

    #[test]
    fn failed_rollback_poisons_until_rotation() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        io.set_fail_fsync(true);
        io.set_fail_truncate(true);
        assert!(store.log(&reg("s1")).is_err());
        io.set_fail_fsync(false);
        io.set_fail_truncate(false);

        // Poisoned: even a healthy I/O layer is refused now.
        match store.log(&reg("s2")) {
            Err(StoreError::Poisoned(_)) => {}
            other => panic!("{other:?}"),
        }
        assert!(store.should_rotate());

        // Rotation heals: fresh WAL, logging resumes.
        store.install_snapshot(&[sess("s1", 0)]).unwrap();
        store.log(&upd("s1", 5)).unwrap();
        let (_, rec) = Store::open(io, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.sessions, vec![sess("s1", 0)]);
        assert_eq!(rec.wal, vec![upd("s1", 5)]);
    }

    #[test]
    fn rotation_threshold_and_cleanup() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), 64).unwrap();
        assert!(!store.should_rotate());
        while !store.should_rotate() {
            store.log(&upd("s1", 1)).unwrap();
        }
        store.install_snapshot(&[sess("s1", 9)]).unwrap();
        assert_eq!(store.seq(), 1);
        assert!(!store.should_rotate());
        assert_eq!(store.stats().snapshots_written(), 1);
        // Old pair removed; new pair authoritative.
        assert!(io.dump(&dir().join("snap-0")).is_none());
        assert!(io.dump(&dir().join("wal-0")).is_none());
        let (_, rec) = Store::open(io, &dir(), 64).unwrap();
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.sessions, vec![sess("s1", 9)]);
        assert!(rec.wal.is_empty());
    }

    #[test]
    fn missing_wal_for_snapshot_seq_is_corrupt() {
        // The WAL is created before the snapshot rename commits the
        // pair, so a snapshot without its WAL is external damage that
        // may have taken acknowledged records with it: boot must fail.
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        store.install_snapshot(&[sess("s1", 2)]).unwrap();
        io.remove(&dir().join("wal-1")).unwrap();
        match Store::open(io, &dir(), DEFAULT_ROTATE_BYTES) {
            Err(StoreError::Corrupt { file, reason, .. }) => {
                assert_eq!(file, dir().join("wal-1"));
                assert!(reason.contains("wal missing"), "{reason}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_rotation_keeps_old_pair_authoritative_at_every_step() {
        // Fail rotation at each of its two write_atomic calls in turn:
        // either way the store must stay on the old pair, keep
        // accepting appends, and a reboot must see every acknowledged
        // record — the exact scenario where snapshot-first ordering
        // silently lost the tail of the old WAL.
        for fail_after in 0..2u64 {
            let io = Arc::new(MemIo::new());
            let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
            store.log(&reg("s1")).unwrap();
            store.log(&upd("s1", 1)).unwrap();

            io.arm_write_atomic_failure(fail_after);
            assert!(
                store.install_snapshot(&[sess("s1", 2)]).is_err(),
                "fail_after {fail_after}"
            );
            assert_eq!(store.seq(), 0, "fail_after {fail_after}");
            assert!(
                io.dump(&dir().join("snap-1")).is_none(),
                "fail_after {fail_after}: no new snapshot may exist"
            );

            // Acknowledged after the failed rotation, into the old WAL.
            store.log(&upd("s1", 2)).unwrap();

            let (store2, rec) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
            assert_eq!(rec.seq, 0, "fail_after {fail_after}");
            assert_eq!(
                rec.wal,
                vec![reg("s1"), upd("s1", 1), upd("s1", 2)],
                "fail_after {fail_after}: every acknowledged record survives"
            );

            // The rotation retry succeeds and carries the full state.
            store2.install_snapshot(&[sess("s1", 3)]).unwrap();
            let (_, rec) = Store::open(io, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
            assert_eq!(rec.seq, 1);
            assert_eq!(rec.sessions, vec![sess("s1", 3)]);
        }
    }

    #[test]
    fn stray_wal_from_interrupted_rotation_is_ignored_and_overwritten() {
        // Crash after wal-(next) creation but before the snap-(next)
        // rename: the stray WAL must not confuse recovery, and the
        // rotation retry must overwrite it.
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        store.log(&reg("s1")).unwrap();
        io.set_file(&dir().join("wal-1"), file_header(WAL_MAGIC));

        let (store2, rec) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert_eq!(rec.seq, 0);
        assert_eq!(rec.wal, vec![reg("s1")]);
        store2.install_snapshot(&[sess("s1", 1)]).unwrap();
        assert_eq!(store2.seq(), 1);
        store2.log(&upd("s1", 4)).unwrap();
        let (_, rec) = Store::open(io, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.wal, vec![upd("s1", 4)]);
    }

    #[test]
    fn mid_wal_corruption_is_a_hard_error_not_a_torn_tail() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        store.log(&reg("s1")).unwrap();
        store.log(&upd("s1", 1)).unwrap();
        store.log(&upd("s1", 2)).unwrap();
        let path = dir().join("wal-0");
        let good = io.dump(&path).unwrap();

        // Flip a payload byte in the FIRST record: two acknowledged
        // records sit after it, so truncating there would lose them —
        // this must be a hard Corrupt, not a "benign" torn tail.
        let mut bad = good.clone();
        bad[FILE_HEADER_LEN + crate::frame::RECORD_HEADER_LEN] ^= 0x01;
        io.set_file(&path, bad);
        match Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES) {
            Err(StoreError::Corrupt {
                file,
                offset,
                reason,
            }) => {
                assert_eq!(file, path);
                assert_eq!(offset, FILE_HEADER_LEN as u64);
                assert!(reason.contains("crc mismatch"), "{reason}");
            }
            other => panic!("{other:?}"),
        }

        // The same flip in the LAST record is the torn-append
        // signature: recovery truncates it and keeps the prefix.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        io.set_file(&path, bad);
        let (_, rec) = Store::open(io, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert_eq!(rec.wal, vec![reg("s1"), upd("s1", 1)]);
        assert!(rec.torn_tail.is_some());
    }

    #[test]
    fn oversized_payloads_are_refused_at_write_time() {
        let io = Arc::new(MemIo::new());
        let (store, _) = Store::open(io.clone(), &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        store.log(&reg("s1")).unwrap();
        let durable = store.wal_len();

        // A WAL record past the frame cap: refused, nothing written.
        let huge = WalRecord::Register {
            name: "big".into(),
            program: "x".repeat(MAX_PAYLOAD as usize + 1),
        };
        match store.log(&huge) {
            Err(StoreError::TooLarge { len, cap }) => {
                assert!(len > cap as usize);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(store.wal_len(), durable);

        // A snapshot session past the cap: refused, old pair intact.
        let big_sess = SessionRecord {
            name: "big".into(),
            schema: "x".repeat(MAX_PAYLOAD as usize + 1),
            epoch: 0,
            relations: vec![],
        };
        match store.install_snapshot(&[big_sess]) {
            Err(StoreError::TooLarge { .. }) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(store.seq(), 0);
        assert!(io.dump(&dir().join("snap-1")).is_none());
        assert!(io.dump(&dir().join("wal-1")).is_none());

        // The store stays healthy: logging and reboot still work.
        store.log(&upd("s1", 1)).unwrap();
        let (_, rec) = Store::open(io, &dir(), DEFAULT_ROTATE_BYTES).unwrap();
        assert_eq!(rec.wal, vec![reg("s1"), upd("s1", 1)]);
    }
}
