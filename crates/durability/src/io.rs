//! The injectable storage layer: every byte the [`Store`](crate::Store)
//! reads or writes goes through [`StorageIo`], so tests can inject
//! short writes, fsync failures, and kill-at-every-byte truncations
//! without touching a disk — and the production [`StdIo`] stays a thin,
//! obviously-correct wrapper over `std::fs`.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// File operations the durability store needs. Implementations must be
/// shareable across threads (the store is reached from connection
/// handlers and the batch leader).
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Reads a whole file. `ErrorKind::NotFound` when absent.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes a whole file **atomically**: the file either keeps its
    /// old content or holds exactly `data`, never a prefix — the
    /// temp-write + fsync + rename protocol on real filesystems.
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends bytes to a file, creating it when absent. A failure may
    /// leave a *prefix* of `data` appended (the torn-write reality the
    /// caller must roll back from).
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Truncates a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Flushes a file's content to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// The file's current length in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// File names (not full paths) directly inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Removes a file (absent is not an error).
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The production implementation over `std::fs`.
#[derive(Debug, Default)]
pub struct StdIo;

impl StorageIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Make the rename itself durable: fsync the parent directory.
        if let Some(dir) = path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(path)?.sync_all()
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// In-memory fault-injection implementation: a path→bytes map plus
/// knobs that make the *next* operations fail the way real storage
/// fails — appends that land only a prefix, fsyncs that error after
/// the bytes are already in the page cache.
///
/// Tests drive crash simulation through [`MemIo::dump`] /
/// [`MemIo::set_file`]: capture the WAL bytes, truncate them at any
/// byte offset, seed a fresh `MemIo`, and recover.
#[derive(Debug, Default)]
pub struct MemIo {
    files: Mutex<HashMap<PathBuf, Vec<u8>>>,
    /// When `true`, every `fsync` fails (the bytes stay appended — the
    /// page-cache reality a crash would lose).
    fail_fsync: AtomicBool,
    /// When `true`, every `truncate` fails (models a WAL whose rollback
    /// path is also broken).
    fail_truncate: AtomicBool,
    /// When set, the next `append` writes only this many bytes of its
    /// data and returns an error (a torn write), then the knob resets.
    short_append: Mutex<Option<usize>>,
    /// When set, this many further `write_atomic` calls succeed and the
    /// one after fails without writing (then the knob resets) — models
    /// ENOSPC/crash at a chosen point in a multi-file protocol.
    write_atomic_failure: Mutex<Option<u64>>,
    /// Successful fsync calls (observability for tests).
    fsyncs: AtomicU64,
}

impl MemIo {
    /// An empty in-memory filesystem.
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// Makes every subsequent `fsync` fail (until reset).
    pub fn set_fail_fsync(&self, fail: bool) {
        self.fail_fsync.store(fail, Ordering::SeqCst);
    }

    /// Makes every subsequent `truncate` fail (until reset).
    pub fn set_fail_truncate(&self, fail: bool) {
        self.fail_truncate.store(fail, Ordering::SeqCst);
    }

    /// Arms a one-shot torn append: the next `append` persists only the
    /// first `keep` bytes of its data and returns an error.
    pub fn arm_short_append(&self, keep: usize) {
        *self.short_append.lock().expect("memio lock") = Some(keep);
    }

    /// Arms a one-shot `write_atomic` failure: the next `after` calls
    /// succeed, the one after that fails leaving its target untouched.
    pub fn arm_write_atomic_failure(&self, after: u64) {
        *self.write_atomic_failure.lock().expect("memio lock") = Some(after);
    }

    /// A copy of a file's bytes (`None` when absent).
    pub fn dump(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().expect("memio lock").get(path).cloned()
    }

    /// Sets a file's bytes verbatim (the corruption/truncation hook).
    pub fn set_file(&self, path: &Path, bytes: Vec<u8>) {
        self.files
            .lock()
            .expect("memio lock")
            .insert(path.to_path_buf(), bytes);
    }

    /// Successful fsync calls so far.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::SeqCst)
    }

    fn not_found(path: &Path) -> io::Error {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("{}: no such file", path.display()),
        )
    }
}

impl StorageIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .expect("memio lock")
            .get(path)
            .cloned()
            .ok_or_else(|| MemIo::not_found(path))
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut armed = self.write_atomic_failure.lock().expect("memio lock");
        match armed.take() {
            Some(0) => {
                return Err(io::Error::other(format!(
                    "injected write_atomic failure ({})",
                    path.display()
                )))
            }
            Some(n) => *armed = Some(n - 1),
            None => {}
        }
        drop(armed);
        self.files
            .lock()
            .expect("memio lock")
            .insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let short = self.short_append.lock().expect("memio lock").take();
        let mut files = self.files.lock().expect("memio lock");
        let file = files.entry(path.to_path_buf()).or_default();
        match short {
            Some(keep) => {
                file.extend_from_slice(&data[..keep.min(data.len())]);
                Err(io::Error::other("injected short write"))
            }
            None => {
                file.extend_from_slice(data);
                Ok(())
            }
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        if self.fail_truncate.load(Ordering::SeqCst) {
            return Err(io::Error::other("injected truncate failure"));
        }
        let mut files = self.files.lock().expect("memio lock");
        let file = files.get_mut(path).ok_or_else(|| MemIo::not_found(path))?;
        file.truncate(len as usize);
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        if self.fail_fsync.load(Ordering::SeqCst) {
            return Err(io::Error::other("injected fsync failure"));
        }
        if !self.files.lock().expect("memio lock").contains_key(path) {
            return Err(MemIo::not_found(path));
        }
        self.fsyncs.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.files
            .lock()
            .expect("memio lock")
            .get(path)
            .map(|f| f.len() as u64)
            .ok_or_else(|| MemIo::not_found(path))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        Ok(self
            .files
            .lock()
            .expect("memio lock")
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.files.lock().expect("memio lock").remove(path);
        Ok(())
    }

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memio_roundtrip_and_faults() {
        let io = MemIo::new();
        let p = Path::new("/d/wal-0");
        assert!(io.read(p).is_err());
        io.append(p, b"abc").unwrap();
        io.append(p, b"def").unwrap();
        assert_eq!(io.read(p).unwrap(), b"abcdef");
        assert_eq!(io.len(p).unwrap(), 6);

        // Torn append: only a prefix lands, and the call errors.
        io.arm_short_append(2);
        assert!(io.append(p, b"XYZ").is_err());
        assert_eq!(io.read(p).unwrap(), b"abcdefXY");
        // The knob is one-shot.
        io.append(p, b"!").unwrap();

        io.truncate(p, 6).unwrap();
        assert_eq!(io.read(p).unwrap(), b"abcdef");

        io.fsync(p).unwrap();
        assert_eq!(io.fsync_count(), 1);
        io.set_fail_fsync(true);
        assert!(io.fsync(p).is_err());
        io.set_fail_fsync(false);
        io.fsync(p).unwrap();
        assert_eq!(io.fsync_count(), 2);

        assert_eq!(io.list(Path::new("/d")).unwrap(), ["wal-0"]);
        io.remove(p).unwrap();
        assert!(io.read(p).is_err());
    }

    #[test]
    fn stdio_roundtrip_in_temp_dir() {
        let dir =
            std::env::temp_dir().join(format!("cqchase-durability-io-test-{}", std::process::id()));
        let io = StdIo;
        io.create_dir_all(&dir).unwrap();
        let p = dir.join("wal-0");
        io.write_atomic(&p, b"header").unwrap();
        io.append(&p, b"+rec").unwrap();
        io.fsync(&p).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"header+rec");
        assert_eq!(io.len(&p).unwrap(), 10);
        io.truncate(&p, 6).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"header");
        let names = io.list(&dir).unwrap();
        assert!(names.contains(&"wal-0".to_string()), "{names:?}");
        io.remove(&p).unwrap();
        io.remove(&p).unwrap(); // absent is not an error
        let _ = std::fs::remove_dir_all(&dir);
    }
}
