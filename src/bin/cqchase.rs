//! `cqchase` — command-line front end.
//!
//! ```text
//! cqchase check FILE                    parse + validate + classify Σ
//! cqchase chase FILE Q [--levels N] [--mode r|o] [--dot]
//! cqchase contain FILE Q QP             test Σ ⊨ Q ⊆∞ QP (with witness)
//! cqchase equiv FILE Q QP               test Σ ⊨ Q ≡∞ QP
//! cqchase minimize FILE Q               minimal equivalent subquery
//! cqchase eval FILE Q                   evaluate Q over the file's facts
//! cqchase serve [--addr A] [--threads N] [--lanes N] [--conn-workers N]
//!               [--cache-capacity N] [--plan-cache-capacity N]
//!               [--data-dir DIR] [--wal-rotate-bytes N]
//!               [--slow-query-us N] [--trace]
//!               [--default-deadline-ms N] [--shed-queue-depth N]
//!               [--shed-resident-bytes N] [--write-timeout-ms N]
//!                                       run the containment/eval server
//! cqchase request [--addr A] JSON…|-    send protocol lines, print replies
//! ```
//!
//! `FILE` is a program in the surface language (`relation …`, `fd …`,
//! `ind …`, queries, and optional ground facts). `serve`/`request`
//! speak the newline-delimited JSON protocol documented in the README's
//! "Service" section — including the `update` op for live fact deltas,
//! e.g. `cqchase request
//! '{"op":"update","session":"s","insert":[["R",[1,2]]]}'`.
//!
//! With `--data-dir`, the server is crash-safe: sessions and updates
//! are write-ahead logged (fsync before acknowledgement), snapshots
//! rotate the WAL, and a restart restores the whole registry — see the
//! README "Durability" section.

use std::io::Read as _;
use std::process::ExitCode;

use cqchase::core::chase::{graph, Chase, ChaseBudget, ChaseMode};
use cqchase::core::classify::classify;
use cqchase::core::{contained, equivalent, minimize, render_chase_witness, ContainmentOptions};
use cqchase::ir::{display, parse_program, ConjunctiveQuery, Program};
use cqchase::service::{Client, ServeOptions, Server};
use cqchase::storage::{evaluate, Database};

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(&src).map_err(|e| format!("{path}: {e}"))
}

fn query<'p>(p: &'p Program, name: &str) -> Result<&'p ConjunctiveQuery, String> {
    p.query(name).ok_or_else(|| {
        format!(
            "no query named `{name}` (declared: {})",
            p.queries
                .iter()
                .map(|q| q.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })
}

fn cmd_check(path: &str) -> Result<(), String> {
    let p = load(path)?;
    println!("{}", display::catalog(&p.catalog));
    if !p.deps.is_empty() {
        println!("{}", display::deps(&p.deps, &p.catalog));
    }
    for q in &p.queries {
        println!("{}", display::query(q, &p.catalog));
    }
    println!(
        "\nrelations: {}   dependencies: {} ({} FDs, {} INDs, max width {})   queries: {}   facts: {}",
        p.catalog.len(),
        p.deps.len(),
        p.deps.num_fds(),
        p.deps.num_inds(),
        p.deps.max_ind_width(),
        p.queries.len(),
        p.facts.len(),
    );
    println!("classification: {:?}", classify(&p.deps, &p.catalog));
    Ok(())
}

fn cmd_chase(
    path: &str,
    qname: &str,
    levels: u32,
    mode: ChaseMode,
    dot: bool,
) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, qname)?;
    let mut ch = Chase::new(q, &p.deps, &p.catalog, mode);
    let status = ch.expand_to_level(levels, ChaseBudget::default());
    if dot {
        println!("{}", graph::render_dot(ch.state(), qname));
    } else {
        println!("{}", graph::render_levels(ch.state()));
        println!(
            "status: {status:?}   conjuncts: {}   levels: {:?}   complete: {}",
            ch.state().num_alive(),
            ch.state().level_histogram(),
            ch.is_complete(),
        );
    }
    Ok(())
}

fn cmd_contain(path: &str, a: &str, b: &str) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, a)?;
    let qp = query(&p, b)?;
    let ans = contained(q, qp, &p.deps, &p.catalog, &ContainmentOptions::default())
        .map_err(|e| e.to_string())?;
    println!(
        "Σ ⊨ {a} ⊆ {b}: {}{}",
        ans.contained,
        if ans.exact {
            ""
        } else {
            "   (semi-decision: inconclusive negative)"
        }
    );
    println!(
        "class: {:?}   bound: {}   levels explored: {}   chase conjuncts: {}",
        ans.class, ans.bound, ans.levels_explored, ans.chase_conjuncts
    );
    if let Some(h) = &ans.witness {
        // Re-derive the chase for rendering (answers don't retain state).
        let mode = ans.class.preferred_mode();
        let mut ch = Chase::new(q, &p.deps, &p.catalog, mode);
        ch.expand_to_level(h.max_level, ChaseBudget::default());
        println!("{}", render_chase_witness(h, qp, ch.state()));
    }
    Ok(())
}

fn cmd_equiv(path: &str, a: &str, b: &str) -> Result<(), String> {
    let p = load(path)?;
    let eq = equivalent(
        query(&p, a)?,
        query(&p, b)?,
        &p.deps,
        &p.catalog,
        &ContainmentOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    println!("Σ ⊨ {a} ≡ {b}: {} (exact: {})", eq.equivalent(), eq.exact());
    Ok(())
}

fn cmd_minimize(path: &str, qname: &str) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, qname)?;
    let m = minimize(q, &p.deps, &p.catalog, &ContainmentOptions::default())
        .map_err(|e| e.to_string())?;
    println!("{}", display::query(q, &p.catalog));
    println!("=> {}", display::query(&m.query, &p.catalog));
    println!("removed conjunct indices: {:?}", m.removed);
    Ok(())
}

fn cmd_eval(path: &str, qname: &str) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, qname)?;
    let db = Database::from_facts(&p.catalog, &p.facts).map_err(|e| e.to_string())?;
    let rows = evaluate(q, &db);
    println!("{} rows", rows.len());
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("({})", cells.join(", "));
    }
    Ok(())
}

fn cmd_serve(opts: &[String]) -> Result<(), String> {
    let mut serve = ServeOptions::default();
    let mut it = opts.iter();
    while let Some(o) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs an argument"))
        };
        match o.as_str() {
            "--addr" => serve.addr = next("--addr")?,
            "--threads" => {
                serve.batch_threads = next("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?
            }
            "--lanes" => {
                serve.lanes = next("--lanes")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--lanes needs a positive integer".to_string())?
            }
            "--conn-workers" => {
                serve.conn_workers = next("--conn-workers")?
                    .parse()
                    .map_err(|_| "--conn-workers needs a positive integer".to_string())?
            }
            "--cache-capacity" => {
                serve.sem_cache_capacity = next("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity needs an integer".to_string())?
            }
            "--plan-cache-capacity" => {
                serve.plan_cache_capacity = next("--plan-cache-capacity")?
                    .parse()
                    .map_err(|_| "--plan-cache-capacity needs an integer".to_string())?
            }
            "--data-dir" => serve.data_dir = Some(next("--data-dir")?.into()),
            "--wal-rotate-bytes" => {
                serve.wal_rotate_bytes = Some(
                    next("--wal-rotate-bytes")?
                        .parse()
                        .map_err(|_| "--wal-rotate-bytes needs an integer".to_string())?,
                )
            }
            "--slow-query-us" => {
                serve.slow_query_us = Some(
                    next("--slow-query-us")?
                        .parse()
                        .map_err(|_| "--slow-query-us needs an integer".to_string())?,
                )
            }
            "--trace" => serve.trace = true,
            "--default-deadline-ms" => {
                serve.default_deadline_ms = Some(
                    next("--default-deadline-ms")?
                        .parse()
                        .map_err(|_| "--default-deadline-ms needs an integer".to_string())?,
                )
            }
            "--shed-queue-depth" => {
                serve.shed_queue_depth = Some(
                    next("--shed-queue-depth")?
                        .parse()
                        .map_err(|_| "--shed-queue-depth needs an integer".to_string())?,
                )
            }
            "--shed-resident-bytes" => {
                serve.shed_resident_bytes = Some(
                    next("--shed-resident-bytes")?
                        .parse()
                        .map_err(|_| "--shed-resident-bytes needs an integer".to_string())?,
                )
            }
            "--write-timeout-ms" => {
                serve.write_timeout_ms = next("--write-timeout-ms")?
                    .parse()
                    .map_err(|_| "--write-timeout-ms needs an integer".to_string())?
            }
            other => return Err(format!("unknown serve option {other}")),
        }
    }
    let server = Server::bind(serve.clone()).map_err(|e| format!("bind {}: {e}", serve.addr))?;
    println!("cqchase-service listening on {}", server.local_addr());
    println!(
        "  batch threads: {}   lanes: {}   connection workers: {}   semantic cache: {} entries/session",
        serve.batch_threads, serve.lanes, serve.conn_workers, serve.sem_cache_capacity
    );
    if let Some(report) = server.recovery_report() {
        let dir = serve.data_dir.as_deref().unwrap_or_else(|| "?".as_ref());
        if report.fresh {
            println!("  durability: fresh data dir {}", dir.display());
        } else {
            println!(
                "  durability: restored {} session(s) + {} WAL record(s) from {}",
                report.snapshot_sessions,
                report.wal_records_replayed,
                dir.display()
            );
        }
        if let Some(tail) = &report.torn_tail {
            println!("  durability: {tail}");
        }
    }
    server.run().map_err(|e| format!("server error: {e}"))
}

fn cmd_request(opts: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut lines: Vec<String> = Vec::new();
    let mut it = opts.iter();
    while let Some(o) = it.next() {
        match o.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--addr needs an argument".to_string())?
            }
            "-" => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                lines.extend(buf.lines().map(str::to_owned));
            }
            json => lines.push(json.to_owned()),
        }
    }
    if lines.is_empty() {
        return Err("no requests given (pass JSON objects or `-` for stdin)".into());
    }
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut failed = false;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let reply = client
            .request_line(line.trim())
            .map_err(|e| format!("request failed: {e}"))?;
        println!("{reply}");
        match serde_json_reply_ok(&reply) {
            Some(true) => {}
            _ => failed = true,
        }
    }
    if failed {
        return Err("one or more requests returned ok:false".into());
    }
    Ok(())
}

/// Whether a response line carries `"ok":true` (None when unparsable).
fn serde_json_reply_ok(line: &str) -> Option<bool> {
    serde_json::from_str(line).ok().map(|v| v["ok"] == true)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cqchase check FILE\n  cqchase chase FILE Q [--levels N] [--mode r|o] [--dot]\n  cqchase contain FILE Q QP\n  cqchase equiv FILE Q QP\n  cqchase minimize FILE Q\n  cqchase eval FILE Q\n  cqchase serve [--addr HOST:PORT] [--threads N] [--lanes N] [--conn-workers N] [--cache-capacity N] [--plan-cache-capacity N] [--data-dir DIR] [--wal-rotate-bytes N] [--slow-query-us N] [--trace] [--default-deadline-ms N] [--shed-queue-depth N] [--shed-resident-bytes N] [--write-timeout-ms N]\n  cqchase request [--addr HOST:PORT] JSON...|-"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match (cmd.as_str(), rest) {
        ("check", [file]) => cmd_check(file),
        ("chase", [file, q, opts @ ..]) => {
            let mut levels = 5u32;
            let mut mode = ChaseMode::Required;
            let mut dot = false;
            let mut it = opts.iter();
            while let Some(o) = it.next() {
                match o.as_str() {
                    "--levels" => levels = it.next().and_then(|v| v.parse().ok()).unwrap_or(levels),
                    "--mode" => {
                        mode = match it.next().map(String::as_str) {
                            Some("o") | Some("O") => ChaseMode::Oblivious,
                            _ => ChaseMode::Required,
                        }
                    }
                    "--dot" => dot = true,
                    other => {
                        return {
                            eprintln!("unknown option {other}");
                            usage()
                        }
                    }
                }
            }
            cmd_chase(file, q, levels, mode, dot)
        }
        ("contain", [file, a, b]) => cmd_contain(file, a, b),
        ("equiv", [file, a, b]) => cmd_equiv(file, a, b),
        ("minimize", [file, q]) => cmd_minimize(file, q),
        ("eval", [file, q]) => cmd_eval(file, q),
        ("serve", opts) => cmd_serve(opts),
        ("request", opts) => cmd_request(opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
