//! `cqchase` — command-line front end.
//!
//! ```text
//! cqchase check FILE                    parse + validate + classify Σ
//! cqchase chase FILE Q [--levels N] [--mode r|o] [--dot]
//! cqchase contain FILE Q QP             test Σ ⊨ Q ⊆∞ QP (with witness)
//! cqchase equiv FILE Q QP               test Σ ⊨ Q ≡∞ QP
//! cqchase minimize FILE Q               minimal equivalent subquery
//! cqchase eval FILE Q                   evaluate Q over the file's facts
//! ```
//!
//! `FILE` is a program in the surface language (`relation …`, `fd …`,
//! `ind …`, queries, and optional ground facts).

use std::process::ExitCode;

use cqchase::core::chase::{graph, Chase, ChaseBudget, ChaseMode};
use cqchase::core::classify::classify;
use cqchase::core::{contained, equivalent, minimize, render_chase_witness, ContainmentOptions};
use cqchase::ir::{display, parse_program, ConjunctiveQuery, Program};
use cqchase::storage::{evaluate, Database};

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(&src).map_err(|e| format!("{path}: {e}"))
}

fn query<'p>(p: &'p Program, name: &str) -> Result<&'p ConjunctiveQuery, String> {
    p.query(name).ok_or_else(|| {
        format!(
            "no query named `{name}` (declared: {})",
            p.queries
                .iter()
                .map(|q| q.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })
}

fn cmd_check(path: &str) -> Result<(), String> {
    let p = load(path)?;
    println!("{}", display::catalog(&p.catalog));
    if !p.deps.is_empty() {
        println!("{}", display::deps(&p.deps, &p.catalog));
    }
    for q in &p.queries {
        println!("{}", display::query(q, &p.catalog));
    }
    println!(
        "\nrelations: {}   dependencies: {} ({} FDs, {} INDs, max width {})   queries: {}   facts: {}",
        p.catalog.len(),
        p.deps.len(),
        p.deps.num_fds(),
        p.deps.num_inds(),
        p.deps.max_ind_width(),
        p.queries.len(),
        p.facts.len(),
    );
    println!("classification: {:?}", classify(&p.deps, &p.catalog));
    Ok(())
}

fn cmd_chase(
    path: &str,
    qname: &str,
    levels: u32,
    mode: ChaseMode,
    dot: bool,
) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, qname)?;
    let mut ch = Chase::new(q, &p.deps, &p.catalog, mode);
    let status = ch.expand_to_level(levels, ChaseBudget::default());
    if dot {
        println!("{}", graph::render_dot(ch.state(), qname));
    } else {
        println!("{}", graph::render_levels(ch.state()));
        println!(
            "status: {status:?}   conjuncts: {}   levels: {:?}   complete: {}",
            ch.state().num_alive(),
            ch.state().level_histogram(),
            ch.is_complete(),
        );
    }
    Ok(())
}

fn cmd_contain(path: &str, a: &str, b: &str) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, a)?;
    let qp = query(&p, b)?;
    let ans = contained(q, qp, &p.deps, &p.catalog, &ContainmentOptions::default())
        .map_err(|e| e.to_string())?;
    println!(
        "Σ ⊨ {a} ⊆ {b}: {}{}",
        ans.contained,
        if ans.exact {
            ""
        } else {
            "   (semi-decision: inconclusive negative)"
        }
    );
    println!(
        "class: {:?}   bound: {}   levels explored: {}   chase conjuncts: {}",
        ans.class, ans.bound, ans.levels_explored, ans.chase_conjuncts
    );
    if let Some(h) = &ans.witness {
        // Re-derive the chase for rendering (answers don't retain state).
        let mode = ans.class.preferred_mode();
        let mut ch = Chase::new(q, &p.deps, &p.catalog, mode);
        ch.expand_to_level(h.max_level, ChaseBudget::default());
        println!("{}", render_chase_witness(h, qp, ch.state()));
    }
    Ok(())
}

fn cmd_equiv(path: &str, a: &str, b: &str) -> Result<(), String> {
    let p = load(path)?;
    let eq = equivalent(
        query(&p, a)?,
        query(&p, b)?,
        &p.deps,
        &p.catalog,
        &ContainmentOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    println!("Σ ⊨ {a} ≡ {b}: {} (exact: {})", eq.equivalent(), eq.exact());
    Ok(())
}

fn cmd_minimize(path: &str, qname: &str) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, qname)?;
    let m = minimize(q, &p.deps, &p.catalog, &ContainmentOptions::default())
        .map_err(|e| e.to_string())?;
    println!("{}", display::query(q, &p.catalog));
    println!("=> {}", display::query(&m.query, &p.catalog));
    println!("removed conjunct indices: {:?}", m.removed);
    Ok(())
}

fn cmd_eval(path: &str, qname: &str) -> Result<(), String> {
    let p = load(path)?;
    let q = query(&p, qname)?;
    let db = Database::from_facts(&p.catalog, &p.facts).map_err(|e| e.to_string())?;
    let rows = evaluate(q, &db);
    println!("{} rows", rows.len());
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("({})", cells.join(", "));
    }
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cqchase check FILE\n  cqchase chase FILE Q [--levels N] [--mode r|o] [--dot]\n  cqchase contain FILE Q QP\n  cqchase equiv FILE Q QP\n  cqchase minimize FILE Q\n  cqchase eval FILE Q"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match (cmd.as_str(), rest) {
        ("check", [file]) => cmd_check(file),
        ("chase", [file, q, opts @ ..]) => {
            let mut levels = 5u32;
            let mut mode = ChaseMode::Required;
            let mut dot = false;
            let mut it = opts.iter();
            while let Some(o) = it.next() {
                match o.as_str() {
                    "--levels" => levels = it.next().and_then(|v| v.parse().ok()).unwrap_or(levels),
                    "--mode" => {
                        mode = match it.next().map(String::as_str) {
                            Some("o") | Some("O") => ChaseMode::Oblivious,
                            _ => ChaseMode::Required,
                        }
                    }
                    "--dot" => dot = true,
                    other => {
                        return {
                            eprintln!("unknown option {other}");
                            usage()
                        }
                    }
                }
            }
            cmd_chase(file, q, levels, mode, dot)
        }
        ("contain", [file, a, b]) => cmd_contain(file, a, b),
        ("equiv", [file, a, b]) => cmd_equiv(file, a, b),
        ("minimize", [file, q]) => cmd_minimize(file, q),
        ("eval", [file, q]) => cmd_eval(file, q),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
