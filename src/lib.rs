//! # cqchase — facade crate
//!
//! Re-exports the full public API of the workspace. See the README for a
//! tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use cqchase_core as core;
pub use cqchase_ir as ir;
pub use cqchase_par as par;
pub use cqchase_service as service;
pub use cqchase_storage as storage;
pub use cqchase_workload as workload;
