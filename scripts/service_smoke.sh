#!/usr/bin/env bash
# Service smoke test: start `cqchase serve` on a loopback port, drive it
# with `cqchase request` (register → check → eval → update → eval →
# stats → shutdown), and assert the answers are identical to direct CLI
# (library) calls on the same inputs — including evaluation over the
# *mutated* facts after a live update. CI runs this after the release
# build; run it locally with `bash scripts/service_smoke.sh`.
set -euo pipefail

BIN=${CQCHASE_BIN:-target/release/cqchase}
PORT=${SMOKE_PORT:-7979}
ADDR=127.0.0.1:$PORT
TMP=$(mktemp -d)
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# The workload: one line of surface language so it embeds in JSON
# verbatim (statements are `.`-terminated; newlines are optional).
PROG='relation R(a, b). ind R[2] <= R[1]. A(x) :- R(x, y). B(x) :- R(x, y), R(y, z). C(x) :- R(y, x). R(1, 2). R(2, 3).'
printf '%s\n' "$PROG" > "$TMP/prog.cq"

# --- Direct library answers via the non-server CLI -------------------
direct_contained() { # args: Q QP -> "true"/"false"
    # Capture first, parse second: piping the live process into `head`
    # races an EPIPE panic when head exits before the CLI finishes.
    local out
    out=$("$BIN" contain "$TMP/prog.cq" "$1" "$2")
    printf '%s\n' "$out" | head -1 | grep -oE 'true|false' | head -1
}
DIRECT_AB=$(direct_contained A B)
DIRECT_AC=$(direct_contained A C)
"$BIN" eval "$TMP/prog.cq" B > "$TMP/direct_eval.txt"
DIRECT_EVAL_COUNT=$(head -1 "$TMP/direct_eval.txt" | grep -oE '^[0-9]+')
[ "$DIRECT_AB" = "true" ] || fail "sanity: A ⊆ B should hold under the cyclic IND"
[ "$DIRECT_AC" = "false" ] || fail "sanity: A ⊆ C should not hold"

# --- Start the server ------------------------------------------------
"$BIN" serve --addr "$ADDR" &
SERVER_PID=$!
for _ in $(seq 100); do
    if "$BIN" request --addr "$ADDR" '{"op":"stats"}' >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before accepting connections"
    sleep 0.1
done

req() { "$BIN" request --addr "$ADDR" "$1"; }

# --- register --------------------------------------------------------
R=$(req "{\"op\":\"register\",\"session\":\"smoke\",\"program\":\"$PROG\"}")
echo "$R"
echo "$R" | grep -q '"ok":true' || fail "register not ok"
echo "$R" | grep -q '"class":"IndsOnly(width=1)"' || fail "register class mismatch"

# --- check: answers must match the direct CLI ------------------------
C1=$(req '{"op":"check","session":"smoke","q":"A","q_prime":"B"}')
echo "$C1"
echo "$C1" | grep -q "\"contained\":$DIRECT_AB" || fail "check A⊆B disagrees with direct call ($DIRECT_AB)"
C2=$(req '{"op":"check","session":"smoke","q":"A","q_prime":"C"}')
echo "$C2"
echo "$C2" | grep -q "\"contained\":$DIRECT_AC" || fail "check A⊆C disagrees with direct call ($DIRECT_AC)"
# A repeat must be served from the semantic cache, same answer.
C3=$(req '{"op":"check","session":"smoke","q":"A","q_prime":"B"}')
echo "$C3" | grep -q '"cached":true' || fail "repeated check did not hit the semantic cache"
echo "$C3" | grep -q "\"contained\":$DIRECT_AB" || fail "cached answer changed"

# --- eval: row count and every row must match the direct CLI ---------
E=$(req '{"op":"eval","session":"smoke","query":"B"}')
echo "$E"
echo "$E" | grep -q "\"count\":$DIRECT_EVAL_COUNT" || fail "eval row count disagrees with direct call ($DIRECT_EVAL_COUNT)"
tail -n +2 "$TMP/direct_eval.txt" | tr -d '() ' | while read -r row; do
    [ -z "$row" ] && continue
    echo "$E" | grep -q "\"$row\"" || fail "direct eval row ($row) missing from service answer"
done

# --- update: mutate the live session, diff against direct CLI --------
# Duplicate registration must be an explicit error, not a replace.
DUP=$(req "{\"op\":\"register\",\"session\":\"smoke\",\"program\":\"$PROG\"}" || true)
echo "$DUP"
echo "$DUP" | grep -q '"ok":false' || fail "duplicate register must be refused"
echo "$DUP" | grep -q 'already registered' || fail "duplicate register error should say so"

# Insert R(3,4) and delete R(1,2) in one update.
U=$(req '{"op":"update","session":"smoke","insert":[["R",[3,4]]],"delete":[["R",[1,2]]]}')
echo "$U"
echo "$U" | grep -q '"ok":true' || fail "update not ok"
echo "$U" | grep -q '"inserted":1' || fail "update should insert 1"
echo "$U" | grep -q '"deleted":1' || fail "update should delete 1"

# Direct CLI on the mutated facts: same program, facts R(2,3), R(3,4).
MUTPROG='relation R(a, b). ind R[2] <= R[1]. A(x) :- R(x, y). B(x) :- R(x, y), R(y, z). C(x) :- R(y, x). R(2, 3). R(3, 4).'
printf '%s\n' "$MUTPROG" > "$TMP/mutprog.cq"
"$BIN" eval "$TMP/mutprog.cq" B > "$TMP/direct_eval_mut.txt"
MUT_EVAL_COUNT=$(head -1 "$TMP/direct_eval_mut.txt" | grep -oE '^[0-9]+')
EM=$(req '{"op":"eval","session":"smoke","query":"B"}')
echo "$EM"
echo "$EM" | grep -q "\"count\":$MUT_EVAL_COUNT" \
    || fail "post-update eval count disagrees with direct call on mutated facts ($MUT_EVAL_COUNT)"
tail -n +2 "$TMP/direct_eval_mut.txt" | tr -d '() ' | while read -r row; do
    [ -z "$row" ] && continue
    echo "$EM" | grep -q "\"$row\"" || fail "direct mutated-eval row ($row) missing from service answer"
done
# Containment answers are facts-independent: the cached check replays.
C4=$(req '{"op":"check","session":"smoke","q":"A","q_prime":"B"}')
echo "$C4" | grep -q "\"contained\":$DIRECT_AB" || fail "post-update check answer changed"
echo "$C4" | grep -q '"cached":true' || fail "post-update check should still be cache-served"

# --- two sessions: interleaved updates must not cross-talk -----------
# Session 2a takes a stream of updates while session 2b serves evals
# and checks in between (the per-session barrier path: 2a's barriers
# must not affect 2b's answers). Both are diffed against the direct CLI.
req "{\"op\":\"register\",\"session\":\"s2a\",\"program\":\"$PROG\"}" | grep -q '"ok":true' || fail "register s2a"
req "{\"op\":\"register\",\"session\":\"s2b\",\"program\":\"$PROG\"}" | grep -q '"ok":true' || fail "register s2b"
req '{"op":"update","session":"s2a","insert":[["R",[3,4]]],"delete":[["R",[1,2]]]}' \
    | grep -q '"ok":true' || fail "s2a update 1"
EB1=$(req '{"op":"eval","session":"s2b","query":"B"}')
echo "$EB1" | grep -q "\"count\":$DIRECT_EVAL_COUNT" \
    || fail "s2b eval between s2a updates diverged from direct call ($DIRECT_EVAL_COUNT)"
req '{"op":"update","session":"s2a","insert":[["R",[4,5]]]}' \
    | grep -q '"inserted":1' || fail "s2a update 2"
CB1=$(req '{"op":"check","session":"s2b","q":"A","q_prime":"B"}')
echo "$CB1" | grep -q "\"contained\":$DIRECT_AB" \
    || fail "s2b check between s2a updates disagrees with direct call ($DIRECT_AB)"
# s2a's final facts: R(2,3), R(3,4), R(4,5) — diff eval B vs direct CLI.
MUT2PROG='relation R(a, b). ind R[2] <= R[1]. A(x) :- R(x, y). B(x) :- R(x, y), R(y, z). C(x) :- R(y, x). R(2, 3). R(3, 4). R(4, 5).'
printf '%s\n' "$MUT2PROG" > "$TMP/mut2prog.cq"
"$BIN" eval "$TMP/mut2prog.cq" B > "$TMP/direct_eval_mut2.txt"
MUT2_COUNT=$(head -1 "$TMP/direct_eval_mut2.txt" | grep -oE '^[0-9]+')
EA2=$(req '{"op":"eval","session":"s2a","query":"B"}')
echo "$EA2" | grep -q "\"count\":$MUT2_COUNT" \
    || fail "s2a post-update eval count disagrees with direct call on mutated facts ($MUT2_COUNT)"
tail -n +2 "$TMP/direct_eval_mut2.txt" | tr -d '() ' | while read -r row; do
    [ -z "$row" ] && continue
    echo "$EA2" | grep -q "\"$row\"" || fail "direct s2a eval row ($row) missing from service answer"
done
# And 2b's facts never moved.
req '{"op":"classify","session":"s2b"}' | grep -q '"facts_epoch":0' \
    || fail "s2b must be untouched by s2a's updates"

# --- stats -----------------------------------------------------------
S=$(req '{"op":"stats"}')
echo "$S" | grep -q '"ok":true' || fail "stats not ok"
echo "$S" | grep -q '"semantic_cache"' || fail "stats missing semantic_cache"
echo "$S" | grep -q '"sessions":\["s2a","s2b","smoke"\]' || fail "stats missing sessions"
echo "$S" | grep -q '"mutation"' || fail "stats missing mutation counters"
echo "$S" | grep -q '"planner"' || fail "stats missing planner counters"
# Evals above compiled plans; B is an acyclic chain, so the fast path
# must have served at least once.
echo "$S" | grep -qE '"compiled":[1-9]' || fail "planner should report compiled plans"
echo "$S" | grep -qE '"acyclic_hits":[1-9]' || fail "planner should report acyclic fast-path hits"

# --- ping: the inline health probe -----------------------------------
PING=$(req '{"op":"ping"}')
echo "$PING"
echo "$PING" | grep -q '"ok":true' || fail "ping not ok"
echo "$PING" | grep -q '"shedding":false' || fail "unloaded server must not report shedding"
echo "$PING" | grep -q '"sessions":3' || fail "ping should count the 3 registered sessions"
echo "$PING" | grep -q '"uptime_s"' || fail "ping missing uptime_s"
echo "$PING" | grep -q '"lanes"' || fail "ping missing lane count"

# --- metrics: Prometheus exposition must carry every family ----------
# The text body is a JSON string, so `\n` separates samples; unescape
# before grepping line-shaped patterns.
M=$(req '{"op":"metrics"}')
echo "$M" | grep -q '"ok":true' || fail "metrics not ok"
MT=$(printf '%s' "$M" | sed 's/\\n/\n/g; s/\\"/"/g')
for family in \
    cqchase_endpoints_eval_count \
    cqchase_endpoints_check_count \
    cqchase_endpoints_update_count \
    cqchase_queue_wait_count \
    cqchase_semantic_cache_hits \
    cqchase_planner_compiled \
    cqchase_eval_row_hits \
    cqchase_server_uptime_s \
    cqchase_server_batch_threads \
    cqchase_server_wal_rotate_bytes \
    cqchase_session_facts \
    cqchase_session_epoch; do
    echo "$MT" | grep -q "^$family" || fail "metrics missing family $family"
done
# Histograms expose cumulative buckets ending at +Inf.
echo "$MT" | grep -q '_histogram_us_pow2_bucket{le="+Inf"}' \
    || fail "metrics missing +Inf histogram bucket"
# Per-session gauges are labelled with the session name.
echo "$MT" | grep -q 'cqchase_session_facts{session="smoke"}' \
    || fail "metrics missing per-session facts gauge for smoke"
# The exposition and the JSON stats must agree on a concrete counter.
EVALS_JSON=$(echo "$S" | grep -oE '"eval":\{"count":[0-9]+' | grep -oE '[0-9]+')
echo "$MT" | grep -q "^cqchase_endpoints_eval_count $EVALS_JSON\$" \
    || fail "metrics eval count disagrees with stats JSON ($EVALS_JSON)"

# --- shutdown: server must exit cleanly ------------------------------
req '{"op":"shutdown"}' | grep -q '"ok":true' || fail "shutdown not ok"
for _ in $(seq 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=; break; }
    sleep 0.1
done
[ -z "$SERVER_PID" ] || fail "server still running after shutdown"

# --- durability: kill -9 mid-churn, restart, diff ---------------------
# Serve with a data directory, register and mutate a session (forcing a
# snapshot halfway so recovery exercises snapshot *and* WAL replay),
# hard-kill the process, restart on the same directory, and diff the
# restored answers against the direct CLI on the same mutated facts.
DATA="$TMP/data"
start_durable() {
    "$BIN" serve --addr "$ADDR" --data-dir "$DATA" --wal-rotate-bytes 65536 &
    SERVER_PID=$!
    for _ in $(seq 100); do
        if "$BIN" request --addr "$ADDR" '{"op":"stats"}' >/dev/null 2>&1; then
            return
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || fail "durable server exited before accepting connections"
        sleep 0.1
    done
    fail "durable server never accepted connections"
}
start_durable
req "{\"op\":\"register\",\"session\":\"dur\",\"program\":\"$PROG\"}" \
    | grep -q '"ok":true' || fail "durable register not ok"
req '{"op":"update","session":"dur","insert":[["R",[3,4]]],"delete":[["R",[1,2]]]}' \
    | grep -q '"ok":true' || fail "durable update 1 not ok"
P=$(req '{"op":"persist"}')
echo "$P"
echo "$P" | grep -q '"ok":true' || fail "persist not ok"
echo "$P" | grep -q '"sessions":1' || fail "persist should snapshot 1 session"
U3=$(req '{"op":"update","session":"dur","insert":[["R",[4,5]]]}')
echo "$U3" | grep -q '"inserted":1' || fail "durable update 2 not ok"
DUR_EPOCH=$(echo "$U3" | grep -oE '"epoch":[0-9]+' | grep -oE '[0-9]+')
# The crash: no warning, no flush, mid-churn SIGKILL.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

start_durable
# Facts after recovery: R(2,3), R(3,4), R(4,5) — the MUT2 program above.
ED=$(req '{"op":"eval","session":"dur","query":"B"}')
echo "$ED"
echo "$ED" | grep -q "\"count\":$MUT2_COUNT" \
    || fail "post-crash eval count disagrees with direct call on mutated facts ($MUT2_COUNT)"
tail -n +2 "$TMP/direct_eval_mut2.txt" | tr -d '() ' | while read -r row; do
    [ -z "$row" ] && continue
    echo "$ED" | grep -q "\"$row\"" || fail "direct eval row ($row) missing after crash recovery"
done
req '{"op":"check","session":"dur","q":"A","q_prime":"B"}' \
    | grep -q "\"contained\":$DIRECT_AB" || fail "post-crash check disagrees with direct call ($DIRECT_AB)"
req '{"op":"classify","session":"dur"}' | grep -q "\"facts_epoch\":$DUR_EPOCH" \
    || fail "facts epoch did not survive the crash (want $DUR_EPOCH)"
# A hard-killed acknowledged update must survive; a fresh update works.
req '{"op":"update","session":"dur","insert":[["R",[5,6]]]}' \
    | grep -q '"inserted":1' || fail "post-crash update not ok"
SD=$(req '{"op":"stats"}')
echo "$SD" | grep -q '"durability":{"enabled":true' || fail "stats missing enabled durability block"
echo "$SD" | grep -qE '"recoveries":[1-9]' || fail "stats should count the crash recovery"
echo "$SD" | grep -qE '"fsyncs":[1-9]' || fail "stats should count fsyncs"
req '{"op":"shutdown"}' | grep -q '"ok":true' || fail "durable shutdown not ok"
for _ in $(seq 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=; break; }
    sleep 0.1
done
[ -z "$SERVER_PID" ] || fail "durable server still running after shutdown"

# --- lanes: 4-lane sharded serving, 8 tenants, crash recovery --------
# Serve with `--lanes 4` and a data directory, register 8 tenants on
# one program text (1 catalog build, 7 attaches), interleave updates on
# the even tenants with evals on the odd ones (answers diffed against
# the direct CLI — lane routing must be invisible), snapshot halfway so
# recovery exercises snapshot *and* WAL replay, hard-kill, restart with
# the same `--lanes 4 --data-dir`, and diff every tenant again.
LDATA="$TMP/lanedata"
start_lanes() {
    "$BIN" serve --addr "$ADDR" --lanes 4 --data-dir "$LDATA" &
    SERVER_PID=$!
    for _ in $(seq 100); do
        if "$BIN" request --addr "$ADDR" '{"op":"stats"}' >/dev/null 2>&1; then
            return
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || fail "lanes server exited before accepting connections"
        sleep 0.1
    done
    fail "lanes server never accepted connections"
}
start_lanes
for i in 0 1 2 3 4 5 6 7; do
    req "{\"op\":\"register\",\"session\":\"lane$i\",\"program\":\"$PROG\"}" \
        | grep -q '"ok":true' || fail "register lane$i"
done
# Interleaved: even tenants mutate, odd tenants answer in between and
# must keep seeing the untouched shared base.
req '{"op":"update","session":"lane0","insert":[["R",[3,4]]],"delete":[["R",[1,2]]]}' \
    | grep -q '"ok":true' || fail "lane0 update"
req '{"op":"eval","session":"lane1","query":"B"}' \
    | grep -q "\"count\":$DIRECT_EVAL_COUNT" || fail "lane1 eval during lane0 churn ($DIRECT_EVAL_COUNT)"
req '{"op":"update","session":"lane2","insert":[["R",[3,4]]],"delete":[["R",[1,2]]]}' \
    | grep -q '"ok":true' || fail "lane2 update"
req '{"op":"eval","session":"lane3","query":"B"}' \
    | grep -q "\"count\":$DIRECT_EVAL_COUNT" || fail "lane3 eval during lane2 churn ($DIRECT_EVAL_COUNT)"
PL=$(req '{"op":"persist"}')
echo "$PL" | grep -q '"ok":true' || fail "lanes persist not ok"
echo "$PL" | grep -q '"sessions":8' || fail "lanes persist should snapshot 8 sessions"
req '{"op":"update","session":"lane4","insert":[["R",[3,4]]],"delete":[["R",[1,2]]]}' \
    | grep -q '"ok":true' || fail "lane4 update"
req '{"op":"eval","session":"lane5","query":"B"}' \
    | grep -q "\"count\":$DIRECT_EVAL_COUNT" || fail "lane5 eval during lane4 churn ($DIRECT_EVAL_COUNT)"
req '{"op":"update","session":"lane6","insert":[["R",[3,4]]],"delete":[["R",[1,2]]]}' \
    | grep -q '"ok":true' || fail "lane6 update"
req '{"op":"eval","session":"lane7","query":"B"}' \
    | grep -q "\"count\":$DIRECT_EVAL_COUNT" || fail "lane7 eval during lane6 churn ($DIRECT_EVAL_COUNT)"
# Mutated tenants answer exactly what the direct CLI answers on the
# mutated facts.
EL0=$(req '{"op":"eval","session":"lane0","query":"B"}')
echo "$EL0" | grep -q "\"count\":$MUT_EVAL_COUNT" \
    || fail "lane0 post-update eval disagrees with direct call ($MUT_EVAL_COUNT)"
# Sharing and sharding are visible: one catalog built, seven attaches,
# four copy-on-write promotions, four lane shards decomposing the load.
SL=$(req '{"op":"stats"}')
echo "$SL" | grep -q '"distinct":1' || fail "stats should show 1 distinct catalog"
echo "$SL" | grep -q '"builds":1' || fail "stats should show 1 catalog build"
echo "$SL" | grep -q '"attaches":7' || fail "stats should show 7 catalog attaches"
echo "$SL" | grep -q '"promotions":4' || fail "stats should show 4 promotions"
ML=$(req '{"op":"metrics"}')
MLT=$(printf '%s' "$ML" | sed 's/\\n/\n/g; s/\\"/"/g')
echo "$MLT" | grep -q '^cqchase_lanes_count 4$' || fail "metrics missing cqchase_lanes_count 4"
for lane in 0 1 2 3; do
    echo "$MLT" | grep -q "^cqchase_lanes_detail_${lane}_batched_items" \
        || fail "metrics missing lane $lane shard family"
done
echo "$MLT" | grep -q '^cqchase_lanes_detail_0_queue_wait_count' \
    || fail "metrics missing per-lane queue-wait family"
echo "$MLT" | grep -q '^cqchase_overload_refusals 0$' || fail "metrics missing overload_refusals"
for family in cqchase_catalogs_distinct cqchase_catalogs_builds \
    cqchase_catalogs_attaches cqchase_catalogs_promotions; do
    echo "$MLT" | grep -q "^$family" || fail "metrics missing family $family"
done
# The crash: mid-churn SIGKILL, then restart with the same lane count.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
start_lanes
# Recovery regrouped identical fact-states onto shared catalogs: the
# snapshot held 6 base-facts tenants and 2 mutated ones (two groups,
# two builds, six attaches), then the WAL replay re-promoted lane4 and
# lane6 off the restored shared base.
SR=$(req '{"op":"stats"}')
echo "$SR" | grep -q '"distinct":2' || fail "recovery should restore 2 distinct catalogs"
echo "$SR" | grep -q '"builds":2' || fail "recovery should build each group once"
echo "$SR" | grep -q '"attaches":6' || fail "recovery should re-attach 6 tenants"
echo "$SR" | grep -q '"promotions":2' || fail "WAL replay should re-promote lane4 and lane6"
# Every tenant answers exactly what it answered before the crash.
for i in 0 2 4 6; do
    ER=$(req "{\"op\":\"eval\",\"session\":\"lane$i\",\"query\":\"B\"}")
    echo "$ER" | grep -q "\"count\":$MUT_EVAL_COUNT" \
        || fail "lane$i post-crash eval disagrees with direct call ($MUT_EVAL_COUNT)"
    tail -n +2 "$TMP/direct_eval_mut.txt" | tr -d '() ' | while read -r row; do
        [ -z "$row" ] && continue
        echo "$ER" | grep -q "\"$row\"" || fail "direct eval row ($row) missing from lane$i after crash"
    done
done
for i in 1 3 5 7; do
    req "{\"op\":\"eval\",\"session\":\"lane$i\",\"query\":\"B\"}" \
        | grep -q "\"count\":$DIRECT_EVAL_COUNT" \
        || fail "lane$i post-crash eval disagrees with direct call ($DIRECT_EVAL_COUNT)"
done
# Restored tenants keep serving updates.
req '{"op":"update","session":"lane1","insert":[["R",[7,8]]]}' \
    | grep -q '"inserted":1' || fail "post-crash lanes update not ok"
req '{"op":"shutdown"}' | grep -q '"ok":true' || fail "lanes shutdown not ok"
for _ in $(seq 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=; break; }
    sleep 0.1
done
[ -z "$SERVER_PID" ] || fail "lanes server still running after shutdown"

# --- chaos: deadlines, a killed client, shed burst, retry recovery ---
# Serve with a low queue-depth watermark and plenty of connection
# workers, register a deliberately expensive session (3-hop chain over
# a complete digraph), then: a 1ms deadline must come back as a
# structured refusal; a client SIGKILLed mid-eval must have its work
# cancelled by the disconnect watcher; an oversized eval burst must
# trip the shed watermark with a retry hint; and a bash-level
# retry-with-backoff loop honoring that hint must recover once the
# burst drains. `ping` stays answerable throughout.
start_chaos() {
    "$BIN" serve --addr "$ADDR" --conn-workers 16 --shed-queue-depth 3 &
    SERVER_PID=$!
    for _ in $(seq 100); do
        if "$BIN" request --addr "$ADDR" '{"op":"ping"}' >/dev/null 2>&1; then
            return
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || fail "chaos server exited before accepting connections"
        sleep 0.1
    done
    fail "chaos server never accepted connections"
}
start_chaos
DN=64
DPROG='relation R(a, b). Q(w, z) :- R(w, x), R(x, y), R(y, z). Small(x) :- R(x, x).'
for ((i = 0; i < DN; i++)); do
    for ((j = 0; j < DN; j++)); do
        DPROG+=" R($i, $j)."
    done
done
req "{\"op\":\"register\",\"session\":\"dense\",\"program\":\"$DPROG\"}" \
    | grep -q '"ok":true' || fail "dense register not ok"

# A 1ms deadline on the dense join: structured refusal, echoed deadline.
DL=$(req '{"op":"eval","session":"dense","query":"Q","deadline_ms":1}' || true)
echo "$DL"
echo "$DL" | grep -q '"error":"deadline exceeded"' || fail "deadline refusal missing"
echo "$DL" | grep -q '"cancelled":true' || fail "deadline refusal must mark cancelled"
echo "$DL" | grep -q '"deadline_ms":1' || fail "deadline refusal must echo the deadline"
# The session is untouched: a deadline-free eval still answers.
req '{"op":"eval","session":"dense","query":"Small"}' \
    | grep -q "\"count\":$DN" || fail "dense session must survive the deadline refusal"

# A client killed mid-eval: the disconnect watcher cancels its work.
"$BIN" request --addr "$ADDR" '{"op":"eval","session":"dense","query":"Q"}' >/dev/null 2>&1 &
DOOMED=$!
sleep 0.2
kill -9 "$DOOMED" 2>/dev/null || true
wait "$DOOMED" 2>/dev/null || true
DISC=
for _ in $(seq 100); do
    if req '{"op":"stats"}' | grep -qE '"cancelled_disconnect":[1-9]'; then
        DISC=1
        break
    fi
    sleep 0.1
done
[ -n "$DISC" ] || fail "killed client's eval was never cancelled"

# An oversized burst trips the shed watermark; refusals carry a hint.
BURST_PIDS=
for _ in $(seq 8); do
    "$BIN" request --addr "$ADDR" '{"op":"eval","session":"dense","query":"Q"}' >/dev/null 2>&1 &
    BURST_PIDS="$BURST_PIDS $!"
done
SHED=
for _ in $(seq 200); do
    R=$(req '{"op":"eval","session":"dense","query":"Small"}' || true)
    if echo "$R" | grep -q '"shed":true'; then
        SHED="$R"
        break
    fi
    sleep 0.05
done
echo "$SHED"
[ -n "$SHED" ] || fail "the burst never tripped the shed watermark"
echo "$SHED" | grep -q '"retry_after_ms"' || fail "shed refusal must carry retry_after_ms"
echo "$SHED" | grep -q 'overloaded' || fail "shed refusal must say the server is overloaded"
HINT=$(echo "$SHED" | grep -oE '"retry_after_ms":[0-9]+' | grep -oE '[0-9]+$')
# Ping is answered inline while the server sheds, and reports it.
req '{"op":"ping"}' | grep -q '"shedding":true' || fail "ping must report shedding under load"
# Bounded retry with exponential backoff, honoring the server's hint:
# must recover once the burst drains.
BACKOFF_MS=$HINT
RECOVERED=
for _ in $(seq 40); do
    sleep "$(awk "BEGIN{printf \"%.3f\", $BACKOFF_MS / 1000}")"
    R=$(req '{"op":"eval","session":"dense","query":"Small"}' || true)
    if echo "$R" | grep -q '"ok":true'; then
        RECOVERED=1
        break
    fi
    echo "$R" | grep -q '"shed":true' || fail "retry hit a non-shed failure: $R"
    BACKOFF_MS=$((BACKOFF_MS * 2))
    [ "$BACKOFF_MS" -gt 2000 ] && BACKOFF_MS=2000
done
[ -n "$RECOVERED" ] || fail "retry with backoff never recovered after the burst"
# shellcheck disable=SC2086
wait $BURST_PIDS 2>/dev/null || true

# The lifecycle counters and their Prometheus families are live.
SC=$(req '{"op":"stats"}')
echo "$SC" | grep -qE '"deadline_exceeded":[1-9]' || fail "stats should count deadline refusals"
echo "$SC" | grep -qE '"cancelled_disconnect":[1-9]' || fail "stats should count disconnect cancellations"
echo "$SC" | grep -qE '"shed":[1-9]' || fail "stats should count shed refusals"
MC=$(req '{"op":"metrics"}')
MCT=$(printf '%s' "$MC" | sed 's/\\n/\n/g; s/\\"/"/g')
for family in cqchase_resilience_deadline_exceeded \
    cqchase_resilience_cancelled_disconnect cqchase_resilience_shed; do
    echo "$MCT" | grep -qE "^$family [1-9]" || fail "metrics missing live family $family"
done
req '{"op":"shutdown"}' | grep -q '"ok":true' || fail "chaos shutdown not ok"
for _ in $(seq 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=; break; }
    sleep 0.1
done
[ -z "$SERVER_PID" ] || fail "chaos server still running after shutdown"

echo "service smoke: OK"
