//! IND inference two ways: the Casanova–Fagin–Papadimitriou axioms
//! (reflexivity, projection & permutation, transitivity) versus the
//! paper's Corollary 2.3 reduction to conjunctive-query containment.
//!
//! Run with `cargo run --example ind_inference`.

use cqchase::core::inference::{
    implies_ind_axiomatic, implies_ind_via_chase, ind_inference_queries,
};
use cqchase::core::ContainmentOptions;
use cqchase::ir::{display, parse_program, Ind};

fn main() {
    let program = parse_program(
        "
        relation ORDERS(oid, cust, item).
        relation CUST(cid, name).
        relation VIP(vid).

        ind ORDERS[cust] <= CUST[cid].
        ind CUST[cid] <= VIP[vid].
        ",
    )
    .unwrap();
    let cat = &program.catalog;
    let opts = ContainmentOptions::default();

    let goals = [
        // Transitive composition: holds.
        Ind::new(
            cat.resolve("ORDERS").unwrap(),
            vec![1],
            cat.resolve("VIP").unwrap(),
            vec![0],
        ),
        // Reverse direction: fails.
        Ind::new(
            cat.resolve("VIP").unwrap(),
            vec![0],
            cat.resolve("ORDERS").unwrap(),
            vec![1],
        ),
        // Reflexivity: holds.
        Ind::new(
            cat.resolve("CUST").unwrap(),
            vec![0, 1],
            cat.resolve("CUST").unwrap(),
            vec![0, 1],
        ),
    ];

    println!("Σ:\n{}\n", display::deps(&program.deps, cat));
    for goal in &goals {
        let (q, qp) = ind_inference_queries(goal, cat);
        let axiomatic = implies_ind_axiomatic(&program.deps, goal, 1_000_000)
            .expect("saturation completes on this tiny schema");
        let chase = implies_ind_via_chase(&program.deps, goal, cat, &opts).expect("within budget");
        println!("goal: {}", display::ind(goal, cat));
        println!("  Corollary 2.3 queries:");
        println!("    {}", display::query(&q, cat));
        println!("    {}", display::query(&qp, cat));
        println!("  axiomatic prover: {axiomatic}");
        println!(
            "  chase-based     : {} (chase explored {} conjuncts, {} levels)",
            chase.contained, chase.chase_conjuncts, chase.levels_explored
        );
        assert_eq!(axiomatic, chase.contained, "the two engines must agree");
        println!();
    }
    println!("Both decision procedures agree on every goal.");
}
