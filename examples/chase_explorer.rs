//! Chase explorer: reproduce the paper's Figure 1 — the O-chase and
//! R-chase of `Q(c) :- R(a, b, c)` with respect to
//! `Σ = {R[1] ⊆ T[1], R[1,3] ⊆ S[1,2], S[1,3] ⊆ R[1,2]}`.
//!
//! Both chases are infinite; this example materializes the first few
//! levels, prints them (the shape of Figure 1) and emits GraphViz DOT.
//!
//! Run with `cargo run --example chase_explorer [levels]`.

use cqchase::core::chase::{graph, Chase, ChaseBudget, ChaseMode};
use cqchase::workload::families::figure1;

fn main() {
    let levels: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let program = figure1();
    let q = program.query("Q").unwrap();

    for mode in [ChaseMode::Required, ChaseMode::Oblivious] {
        let mut chase = Chase::new(q, &program.deps, &program.catalog, mode);
        chase.expand_to_level(levels, ChaseBudget::default());
        let name = match mode {
            ChaseMode::Required => "R-chase",
            ChaseMode::Oblivious => "O-chase",
        };
        println!("=== {name} of Q, first {levels} levels ===");
        println!("{}", graph::render_levels(chase.state()));
        println!(
            "conjuncts per level: {:?}   (complete: {})",
            chase.state().level_histogram(),
            chase.is_complete(),
        );
        println!("--- DOT ---\n{}", graph::render_dot(chase.state(), name));
    }
}
