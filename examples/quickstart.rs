//! Quickstart: parse a schema, dependencies and queries, then test
//! containment, equivalence and minimization.
//!
//! Run with `cargo run --example quickstart`.

use cqchase::core::{contained, equivalent, minimize, ContainmentOptions};
use cqchase::ir::{display, parse_program};

fn main() {
    // The paper's opening example: employees and departments with a
    // foreign-key inclusion dependency.
    let program = parse_program(
        "
        relation EMP(eno, sal, dept).
        relation DEP(dno, loc).

        // Every department that has an employee also has a location.
        ind EMP[dept] <= DEP[dno].

        Q1(e) :- EMP(e, s, d), DEP(d, l).
        Q2(e) :- EMP(e, s, d).
        ",
    )
    .expect("program parses");

    let q1 = program.query("Q1").unwrap();
    let q2 = program.query("Q2").unwrap();
    let opts = ContainmentOptions::default();

    println!("Schema:\n{}\n", display::catalog(&program.catalog));
    println!(
        "Dependencies:\n{}\n",
        display::deps(&program.deps, &program.catalog)
    );
    println!("{}", display::query(q1, &program.catalog));
    println!("{}\n", display::query(q2, &program.catalog));

    // Containment both ways.
    let fwd = contained(q2, q1, &program.deps, &program.catalog, &opts).unwrap();
    println!(
        "Q2 ⊆ Q1 under Σ?  {}   (class: {:?}, witness level {})",
        fwd.contained,
        fwd.class,
        fwd.witness.as_ref().map(|w| w.max_level).unwrap_or(0),
    );
    let bwd = contained(q1, q2, &program.deps, &program.catalog, &opts).unwrap();
    println!("Q1 ⊆ Q2 under Σ?  {}", bwd.contained);

    // Equivalence in one call.
    let eq = equivalent(q1, q2, &program.deps, &program.catalog, &opts).unwrap();
    println!("Q1 ≡ Q2 under Σ?  {}", eq.equivalent());

    // Minimization: the DEP conjunct of Q1 is redundant under the IND.
    let min = minimize(q1, &program.deps, &program.catalog, &opts).unwrap();
    println!(
        "\nminimize(Q1) dropped conjuncts {:?}:\n  {}",
        min.removed,
        display::query(&min.query, &program.catalog)
    );

    // Without the IND the queries differ.
    let no_deps = cqchase::ir::DependencySet::new();
    let fwd2 = contained(q2, q1, &no_deps, &program.catalog, &opts).unwrap();
    println!("\nWithout Σ: Q2 ⊆ Q1?  {}", fwd2.contained);
}
