//! The paper's Section 4 counterexample: two queries equivalent over all
//! *finite* databases obeying Σ = {R: {2}→1, R[2] ⊆ R[1]}, yet
//! inequivalent when infinite databases are allowed.
//!
//! This example demonstrates both halves:
//!   1. exhaustively checks `Q1(B) ⊆ Q2(B)` on *every* Σ-satisfying
//!      instance over small domains (finite containment holds);
//!   2. shows the chase of `Q1` never yields a homomorphic image of `Q2`
//!      (unrestricted containment fails) — and exhibits the infinite
//!      witness structure (the forward chain).
//!
//! Run with `cargo run --example finite_counterexample`.

use cqchase::core::chase::{graph, Chase, ChaseBudget, ChaseMode};
use cqchase::core::finite::{finite_contained_exhaustive, section4_example};
use cqchase::core::{contained, ContainmentOptions};
use cqchase::ir::display;

fn main() {
    let ex = section4_example();
    println!("Σ:\n{}\n", display::deps(&ex.sigma, &ex.catalog));
    println!("{}", display::query(&ex.q1, &ex.catalog));
    println!("{}\n", display::query(&ex.q2, &ex.catalog));

    // Part 1: finite containment, exhaustively.
    for domain in [2i64, 3] {
        let rep = finite_contained_exhaustive(&ex.q1, &ex.q2, &ex.sigma, &ex.catalog, domain)
            .expect("domain small enough to enumerate");
        println!(
            "domain {domain}: {} instances, {} satisfy Σ, Q1 ⊆f Q2 on all of them: {}",
            rep.instances_total,
            rep.instances_satisfying,
            rep.holds(),
        );
        assert!(rep.holds());
    }

    // Part 2: unrestricted containment fails — the chase of Q1 is an
    // infinite forward chain R(x, y), R(y, n1), R(n1, n2), … in which x
    // never gains an incoming edge.
    let ans = contained(
        &ex.q1,
        &ex.q2,
        &ex.sigma,
        &ex.catalog,
        &ContainmentOptions::default(),
    )
    .unwrap();
    println!(
        "\nQ1 ⊆∞ Q2? {} (class {:?}; semi-decision exact = {})",
        ans.contained, ans.class, ans.exact
    );
    assert!(!ans.contained);

    let mut chase = Chase::new(&ex.q1, &ex.sigma, &ex.catalog, ChaseMode::Required);
    chase.expand_to_level(6, ChaseBudget::default());
    println!("\nThe chase of Q1 (first 6 levels — the infinite witness):");
    println!("{}", graph::render_levels(chase.state()));
    println!(
        "⇒ finitely equivalent, infinitely inequivalent: ⊆f and ⊆∞ genuinely differ for this Σ."
    );
}
