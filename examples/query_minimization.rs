//! Query minimization under dependencies on a realistic warehouse
//! schema: redundant joins introduced by views/macros get eliminated
//! when the foreign keys (INDs) guarantee the joined rows exist.
//!
//! Run with `cargo run --example query_minimization`.

use cqchase::core::{equivalent, minimize, ContainmentOptions};
use cqchase::ir::{display, parse_program};

fn main() {
    let program = parse_program(
        "
        relation SALES(sid, item, store, day).
        relation ITEM(iid, cat).
        relation STORE(stid, city).
        relation CITY(cname, region).

        // Foreign keys.
        ind SALES[item]  <= ITEM[iid].
        ind SALES[store] <= STORE[stid].
        ind STORE[city]  <= CITY[cname].

        // A report query that joins every dimension 'just in case'.
        Report(s) :- SALES(s, i, st, d), ITEM(i, c), STORE(st, ci), CITY(ci, r).

        // One that actually uses a dimension attribute in the head.
        ByCity(s, ci) :- SALES(s, i, st, d), STORE(st, ci), CITY(ci, r).

        // One with a genuine filter that must survive.
        Electronics(s) :- SALES(s, i, st, d), ITEM(i, \"electronics\").
        ",
    )
    .unwrap();
    let opts = ContainmentOptions::default();

    for name in ["Report", "ByCity", "Electronics"] {
        let q = program.query(name).unwrap();
        let min = minimize(q, &program.deps, &program.catalog, &opts).unwrap();
        println!("{}", display::query(q, &program.catalog));
        println!(
            "  -> {} ({} of {} conjuncts kept, removed {:?})",
            display::query(&min.query, &program.catalog),
            min.query.num_atoms(),
            q.num_atoms(),
            min.removed,
        );
        // Sanity: the result is equivalent to the original.
        let eq = equivalent(q, &min.query, &program.deps, &program.catalog, &opts).unwrap();
        assert!(eq.equivalent());
        println!("  equivalence re-verified: true\n");
    }

    // The pure-join Report collapses to the single SALES scan; ByCity
    // must keep STORE (it exports `ci`) but drops CITY; Electronics keeps
    // its filtering ITEM atom.
    let report = minimize(
        program.query("Report").unwrap(),
        &program.deps,
        &program.catalog,
        &opts,
    )
    .unwrap();
    assert_eq!(report.query.num_atoms(), 1);
    println!("Report shrank to a single scan — the INDs made every dimension join redundant.");
}
