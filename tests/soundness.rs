//! Cross-layer soundness: whenever the chase-based engine certifies
//! `Σ ⊨ Q ⊆∞ Q′`, the containment must actually hold on concrete finite
//! Σ-satisfying databases (since `⊆∞ ⇒ ⊆f`). This wires together all
//! four layers: workload generation → data chase repair → query
//! evaluation → containment engine.

use cqchase::core::chase::ChaseBudget;
use cqchase::core::containment::ChaseBudgetOpt;
use cqchase::core::{contained, ContainmentOptions};
use cqchase::ir::{Catalog, DependencySet};
use cqchase::storage::{evaluate, DataChaseBudget};

/// Small budgets: cyclic dependency sets make both the query chase and
/// the data chase unbounded, and debug-mode tests must cut off early.
fn small_opts() -> ContainmentOptions {
    ContainmentOptions {
        budget: ChaseBudgetOpt(ChaseBudget {
            max_steps: 300,
            max_conjuncts: 2_000,
        }),
        ..Default::default()
    }
}

fn small_data_budget() -> DataChaseBudget {
    DataChaseBudget {
        max_steps: 1_500,
        max_tuples: 1_500,
    }
}
use cqchase::workload::{DatabaseGen, IndSetGen, KeyBasedGen, QueryGen};
use std::collections::HashSet;

fn check_on_instances(
    q: &cqchase::ir::ConjunctiveQuery,
    qp: &cqchase::ir::ConjunctiveQuery,
    sigma: &DependencySet,
    catalog: &Catalog,
    seeds: std::ops::Range<u64>,
) -> usize {
    let mut checked = 0;
    for seed in seeds {
        let gen = DatabaseGen {
            seed,
            tuples_per_relation: 5,
            domain: 6,
        };
        let Some(db) = gen.generate_satisfying(catalog, sigma, small_data_budget()) else {
            continue;
        };
        let a = evaluate(q, &db);
        let b: HashSet<_> = evaluate(qp, &db).into_iter().collect();
        for t in &a {
            assert!(
                b.contains(t),
                "certified containment violated on instance (seed {seed}):\n{db}"
            );
        }
        checked += 1;
    }
    checked
}

#[test]
fn positive_containments_hold_on_instances_inds_only() {
    let mut catalog = Catalog::new();
    catalog.declare("R", ["a", "b"]).unwrap();
    catalog.declare("S", ["x", "y"]).unwrap();
    let opts = small_opts();

    let mut verified = 0;
    for sigma_seed in 0..4u64 {
        let sigma = IndSetGen {
            seed: sigma_seed,
            num_inds: 2,
            width: 1,
            acyclic: true, // finite chases keep the data chase terminating
        }
        .generate(&catalog);
        let queries = QueryGen {
            seed: sigma_seed * 17,
            num_atoms: 2,
            num_vars: 3,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 1,
        }
        .generate_many("Q", &catalog, 4);
        for (i, q) in queries.iter().enumerate() {
            for qp in &queries[i..] {
                let Ok(ans) = contained(q, qp, &sigma, &catalog, &opts) else {
                    continue;
                };
                if ans.contained && ans.exact {
                    verified += check_on_instances(q, qp, &sigma, &catalog, 0..6);
                }
            }
        }
    }
    assert!(verified > 0, "the sweep must verify at least one instance");
}

#[test]
fn positive_containments_hold_on_instances_key_based() {
    let opts = small_opts();
    let mut verified = 0;
    for seed in 0..4u64 {
        let (catalog, sigma) = KeyBasedGen {
            seed,
            num_relations: 2,
            key_width: 1,
            nonkey_width: 1,
            num_inds: 2,
            ind_width: 1,
            acyclic: true,
        }
        .generate();
        let queries = QueryGen {
            seed: seed * 31,
            num_atoms: 2,
            num_vars: 3,
            num_dvs: 1,
            const_prob: 0.0,
            const_pool: 1,
        }
        .generate_many("Q", &catalog, 3);
        for q in &queries {
            for qp in &queries {
                let Ok(ans) = contained(q, qp, &sigma, &catalog, &opts) else {
                    continue;
                };
                if ans.contained && ans.exact {
                    // Key FDs make random instances frequently inconsistent
                    // (constant clashes), so sweep enough seeds that some
                    // instance survives the repair.
                    verified += check_on_instances(q, qp, &sigma, &catalog, 0..16);
                }
            }
        }
    }
    assert!(verified > 0);
}

#[test]
fn equivalence_means_equal_answers() {
    // Chains under the successor IND: Q and Deep are equivalent, so their
    // answers agree on every Σ-satisfying instance.
    let p = cqchase::ir::parse_program(
        "relation R(a, b).
         ind R[2] <= R[1].
         Q(x) :- R(x, y).
         Deep(x) :- R(x, y), R(y, z).",
    )
    .unwrap();
    let opts = ContainmentOptions::default();
    let q = p.query("Q").unwrap();
    let deep = p.query("Deep").unwrap();
    let eq = cqchase::core::equivalent(q, deep, &p.deps, &p.catalog, &opts).unwrap();
    assert!(eq.equivalent());

    // Σ-satisfying instances here are exactly those where col-2 values
    // appear in col 1; build a few cyclic ones by hand.
    let mut db = cqchase::storage::Database::new(&p.catalog);
    db.insert_named("R", [1i64, 2]).unwrap();
    db.insert_named("R", [2i64, 3]).unwrap();
    db.insert_named("R", [3i64, 1]).unwrap();
    assert!(cqchase::storage::satisfies(&db, &p.deps));
    assert_eq!(evaluate(q, &db), evaluate(deep, &db));
}
