//! Property-based tests (proptest) on the core invariants.

use cqchase::core::chase::{Chase, ChaseBudget, ChaseMode};
use cqchase::core::containment::ChaseBudgetOpt;
use cqchase::core::{contained, minimize, ContainmentOptions};
use cqchase::ir::{Catalog, ConjunctiveQuery, DependencySet, Ind, QueryBuilder};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", ["a", "b"]).unwrap();
    c
}

/// A small budget: Mixed-class negatives cut off quickly (the default
/// 4000-step budget is meant for interactive use, not hundreds of
/// proptest cases in debug builds).
fn opts() -> ContainmentOptions {
    ContainmentOptions {
        budget: ChaseBudgetOpt(ChaseBudget {
            max_steps: 200,
            max_conjuncts: 2_000,
        }),
        ..Default::default()
    }
}

/// Strategy: small queries over the binary relation R with variables
/// drawn from a pool of 4 names; the head variable is patched into the
/// first atom so queries are always safe.
fn small_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (0usize..4, 0usize..4);
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| {
        let cat = catalog();
        let mut b = QueryBuilder::new("Q", &cat).head_vars(["v0"]);
        for (i, (x, y)) in atoms.iter().enumerate() {
            let (x, y) = if i == 0 { (0, *y) } else { (*x, *y) };
            b = b
                .atom("R", [format!("v{x}"), format!("v{y}")])
                .expect("R exists");
        }
        b.build().expect("safe by construction")
    })
}

/// Strategy: a dependency set over R that is empty, the FD, the cyclic
/// IND, or both (Mixed).
fn small_sigma() -> impl Strategy<Value = DependencySet> {
    (any::<bool>(), any::<bool>()).prop_map(|(fd, ind)| {
        let cat = catalog();
        let r = cat.resolve("R").unwrap();
        let mut s = DependencySet::new();
        if fd {
            s.push(cqchase::ir::Fd::new(r, vec![0], 1));
        }
        if ind {
            s.push(Ind::new(r, vec![1], r, vec![0]));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Containment is reflexive for every class of Σ.
    #[test]
    fn containment_reflexive(q in small_query(), sigma in small_sigma()) {
        let cat = catalog();
        let ans = contained(&q, &q, &sigma, &cat, &opts()).unwrap();
        prop_assert!(ans.contained);
    }

    /// Certified containment is transitive on sampled triples.
    #[test]
    fn containment_transitive(
        a in small_query(),
        b in small_query(),
        c in small_query(),
        sigma in small_sigma(),
    ) {
        let cat = catalog();
        let opts = opts();
        let ab = contained(&a, &b, &sigma, &cat, &opts).unwrap();
        let bc = contained(&b, &c, &sigma, &cat, &opts).unwrap();
        if ab.contained && ab.exact && bc.contained && bc.exact {
            let ac = contained(&a, &c, &sigma, &cat, &opts).unwrap();
            prop_assert!(ac.contained, "containment must be transitive");
        }
    }

    /// Minimization yields an equivalent query that is no larger.
    #[test]
    fn minimize_sound(q in small_query(), sigma in small_sigma()) {
        let cat = catalog();
        let opts = opts();
        let m = minimize(&q, &sigma, &cat, &opts).unwrap();
        prop_assert!(m.query.num_atoms() <= q.num_atoms());
        prop_assert!(m.query.num_atoms() >= 1);
        let fwd = contained(&q, &m.query, &sigma, &cat, &opts).unwrap();
        let bwd = contained(&m.query, &q, &sigma, &cat, &opts).unwrap();
        prop_assert!(fwd.contained && bwd.contained, "minimized query must stay equivalent");
    }

    /// The chase is deterministic: building it twice gives identical
    /// rendered conjuncts, level by level.
    #[test]
    fn chase_deterministic(q in small_query(), sigma in small_sigma()) {
        let cat = catalog();
        let render = |_| {
            let mut ch = Chase::new(&q, &sigma, &cat, ChaseMode::Required);
            ch.expand_to_level(4, ChaseBudget::default());
            ch.state()
                .alive_conjuncts()
                .map(|(id, c)| (c.level, ch.state().render_conjunct(id)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(render(0), render(1));
    }

    /// Chase growth is monotone: a deeper expansion preserves the
    /// shallower one's conjuncts as a prefix.
    #[test]
    fn chase_expansion_monotone(q in small_query(), sigma in small_sigma()) {
        let cat = catalog();
        let mut ch = Chase::new(&q, &sigma, &cat, ChaseMode::Required);
        ch.expand_to_level(2, ChaseBudget::default());
        let before: Vec<String> = ch
            .state()
            .alive_conjuncts()
            .map(|(id, _)| ch.state().render_conjunct(id))
            .collect();
        ch.expand_to_level(5, ChaseBudget::default());
        let after: Vec<String> = ch
            .state()
            .alive_conjuncts()
            .map(|(id, _)| ch.state().render_conjunct(id))
            .collect();
        prop_assert!(after.len() >= before.len());
        prop_assert_eq!(&after[..before.len()], &before[..]);
    }

    /// Chandra–Merlin sanity: without dependencies, dropping an atom
    /// always gives a containing query (Q ⊆ Q\{c}).
    #[test]
    fn dropping_atoms_weakens(q in small_query()) {
        let cat = catalog();
        let sigma = DependencySet::new();
        let opts = opts();
        if q.num_atoms() > 1 {
            for i in 0..q.num_atoms() {
                let weaker = q.without_atom(i);
                let ans = contained(&q, &weaker, &sigma, &cat, &opts).unwrap();
                prop_assert!(ans.contained, "Q ⊆ Q minus atom {i}");
            }
        }
    }

    /// O-chase and R-chase certify the same positive containments
    /// (Theorem 1 holds for both chases).
    #[test]
    fn chase_modes_agree_on_positives(
        q in small_query(),
        qp in small_query(),
        sigma in small_sigma(),
    ) {
        let cat = catalog();
        // Only certified classes (skip Mixed where negatives are inexact).
        if sigma.num_fds() > 0 && sigma.num_inds() > 0 {
            return Ok(());
        }
        let mut o_opts = opts();
        o_opts.mode = Some(ChaseMode::Oblivious);
        let mut r_opts = opts();
        r_opts.mode = Some(ChaseMode::Required);
        let o = contained(&q, &qp, &sigma, &cat, &o_opts);
        let r = contained(&q, &qp, &sigma, &cat, &r_opts);
        if let (Ok(o), Ok(r)) = (o, r) {
            prop_assert_eq!(o.contained, r.contained);
        }
    }
}
