//! End-to-end integration tests: every worked example from the paper,
//! driven through the facade crate exactly as a downstream user would.

use cqchase::core::chase::{graph, Chase, ChaseBudget, ChaseMode};
use cqchase::core::classify::{classify, SigmaClass};
use cqchase::core::finite::{finite_contained_exhaustive, k_sigma, section4_example};
use cqchase::core::{contained, equivalent, minimize, ContainmentOptions};
use cqchase::ir::{parse_program, DependencySet};

/// Section 1: Q1 and Q2 over EMP/DEP are equivalent iff the IND holds.
#[test]
fn intro_example_end_to_end() {
    let p = parse_program(
        "relation EMP(eno, sal, dept).
         relation DEP(dno, loc).
         ind EMP[dept] <= DEP[dno].
         Q1(e) :- EMP(e, s, d), DEP(d, l).
         Q2(e) :- EMP(e, s, d).",
    )
    .unwrap();
    let opts = ContainmentOptions::default();
    let q1 = p.query("Q1").unwrap();
    let q2 = p.query("Q2").unwrap();

    let eq = equivalent(q1, q2, &p.deps, &p.catalog, &opts).unwrap();
    assert!(eq.equivalent() && eq.exact());

    let eq_nodeps = equivalent(q1, q2, &DependencySet::new(), &p.catalog, &opts).unwrap();
    assert!(!eq_nodeps.equivalent());

    // The redundant DEP conjunct disappears under minimization.
    let min = minimize(q1, &p.deps, &p.catalog, &opts).unwrap();
    assert_eq!(min.query.num_atoms(), 1);
}

/// Figure 1: the two chases of Q(c) :- R(a,b,c) under the 3-IND Σ.
#[test]
fn figure1_chase_shapes() {
    let p = parse_program(
        "relation R(a, b, c). relation S(x, y, z). relation T(u, v).
         ind R[1] <= T[1].
         ind R[1, 3] <= S[1, 2].
         ind S[1, 3] <= R[1, 2].
         Q(c) :- R(a, b, c).",
    )
    .unwrap();
    let q = p.query("Q").unwrap();
    for mode in [ChaseMode::Required, ChaseMode::Oblivious] {
        let mut ch = Chase::new(q, &p.deps, &p.catalog, mode);
        let status = ch.expand_to_level(4, ChaseBudget::default());
        assert_eq!(status, cqchase::core::ChaseStatus::LevelReached, "{mode:?}");
        assert!(!ch.is_complete(), "Figure 1 chases are infinite ({mode:?})");
        // Level 1 always holds one T-conjunct and one S-conjunct.
        let level1: Vec<&str> = ch
            .state()
            .alive_conjuncts()
            .filter(|(_, c)| c.level == 1)
            .map(|(_, c)| ch.state().catalog().name(c.rel))
            .collect();
        assert_eq!(level1.len(), 2, "{mode:?}");
        assert!(level1.contains(&"T") && level1.contains(&"S"));
        // Rendering works and mentions every IND label.
        let text = graph::render_levels(ch.state());
        for ind in ["IND#0", "IND#1", "IND#2"] {
            assert!(text.contains(ind), "{mode:?}: missing {ind} in\n{text}");
        }
    }
}

/// Theorem 2's corollary in action: containment under a cyclic IND needs
/// genuine chase depth, and both chase disciplines answer identically.
#[test]
fn cyclic_ind_containment_both_modes() {
    let p = parse_program(
        "relation R(a, b).
         ind R[2] <= R[1].
         Q(x) :- R(x, y).
         Deep(x) :- R(x, a), R(a, b), R(b, c), R(c, d), R(d, e).
         Wrong(x) :- R(a, x).",
    )
    .unwrap();
    for mode in [ChaseMode::Required, ChaseMode::Oblivious] {
        let opts = ContainmentOptions {
            mode: Some(mode),
            ..Default::default()
        };
        let deep = contained(
            p.query("Q").unwrap(),
            p.query("Deep").unwrap(),
            &p.deps,
            &p.catalog,
            &opts,
        )
        .unwrap();
        assert!(deep.contained && deep.exact, "{mode:?}");
        assert_eq!(deep.witness.unwrap().max_level, 4);
        let wrong = contained(
            p.query("Q").unwrap(),
            p.query("Wrong").unwrap(),
            &p.deps,
            &p.catalog,
            &opts,
        )
        .unwrap();
        assert!(!wrong.contained && wrong.exact, "{mode:?}");
    }
}

/// Section 4's counterexample, end to end.
#[test]
fn section4_counterexample_end_to_end() {
    let ex = section4_example();
    assert_eq!(classify(&ex.sigma, &ex.catalog), SigmaClass::Mixed);
    assert_eq!(k_sigma(&ex.sigma, &ex.catalog), None);

    // Finitely contained (exhaustive over domain 3)…
    let rep = finite_contained_exhaustive(&ex.q1, &ex.q2, &ex.sigma, &ex.catalog, 3).unwrap();
    assert!(rep.holds());
    // …but not infinitely (semi-decision: flagged inexact).
    let ans = contained(
        &ex.q1,
        &ex.q2,
        &ex.sigma,
        &ex.catalog,
        &ContainmentOptions::default(),
    )
    .unwrap();
    assert!(!ans.contained);
    assert!(!ans.exact);
}

/// The classification table of the paper's positive results.
#[test]
fn classification_matrix() {
    let cases = [
        ("relation R(a).", SigmaClass::Empty),
        ("relation R(a, b). fd R: a -> b.", SigmaClass::FdsOnly),
        (
            "relation R(a, b). ind R[2] <= R[1].",
            SigmaClass::IndsOnly { width: 1 },
        ),
        (
            "relation R(a, b). fd R: b -> a. ind R[2] <= R[1].",
            SigmaClass::Mixed,
        ),
    ];
    for (src, expect) in cases {
        let p = parse_program(src).unwrap();
        assert_eq!(classify(&p.deps, &p.catalog), expect, "{src}");
    }
    // Key-based needs a structural check, not equality (it carries keys).
    let kb = parse_program(
        "relation E(k, a). relation D(k2, b).
         fd E: k -> a. fd D: k2 -> b.
         ind E[2] <= D[1].",
    )
    .unwrap();
    assert!(matches!(
        classify(&kb.deps, &kb.catalog),
        SigmaClass::KeyBased { width: 1, .. }
    ));
}

/// A vacuous containment via FD constant clash flows through the facade.
#[test]
fn vacuous_containment() {
    let p = parse_program(
        "relation R(a, b). relation S(z).
         fd R: a -> b.
         Q(x) :- R(x, 1), R(x, 2).
         Any(x) :- S(x).",
    )
    .unwrap();
    let ans = contained(
        p.query("Q").unwrap(),
        p.query("Any").unwrap(),
        &p.deps,
        &p.catalog,
        &ContainmentOptions::default(),
    )
    .unwrap();
    assert!(ans.contained && ans.empty_chase);
}
